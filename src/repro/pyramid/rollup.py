"""The multi-resolution rollup store: geometric pre-aggregation levels.

One :class:`Pyramid` mirrors a sliding window of base values (for the
streaming operator, completed pane means) and maintains, incrementally, a
small set of coarser rollup levels at geometric bucket ratios (1/4/16/64 by
default).  Each level holds the means of consecutive non-overlapping
``ratio``-point buckets of the base stream, aligned to *global* base indices
(bucket ``b`` always covers base values ``[b*ratio, (b+1)*ratio)`` no matter
when it was computed), so any two clients asking for the same span get the
same buckets.

**Incrementality.**  ``extend`` costs O(new values x levels): each level
carries over the raw tail of its currently-open bucket (fewer than ``ratio``
values) and completes buckets with the same row-wise reshape/mean reduction
:func:`repro.core.preaggregation.bucket_means` uses, so level contents are
*bit-identical* to bucketing the concatenated stream from scratch — there is
no incremental-summation drift to bound in the first place.  The exact-
rebuild guard mirrors :class:`repro.core.streaming.RollingWindowState` all
the same: :meth:`verify_levels` recomputes every coverable bucket from the
retained base window and raises :class:`PyramidDriftError` on any
disagreement, and :meth:`rebuild` forces the recomputation, exactly as the
rolling state's ``verify_incremental`` / ``rebuild`` pair does for its sums.

**Bounded memory.**  The base level retains ``capacity`` values (the mirror
of the streaming window); each rollup level retains just enough buckets to
cover that window (``ceil(capacity/ratio) + 1`` for alignment slack), so the
whole pyramid costs ~``capacity * sum(1/ratio)`` extra floats — about 1.33x
the window for the default ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.preaggregation import bucket_means, expected_ratio
from ..stream.panes import RollingArray
from .view import PyramidView, ViewSpec

__all__ = [
    "Pyramid",
    "PyramidLevel",
    "PyramidStats",
    "LevelStats",
    "PyramidError",
    "PyramidDriftError",
    "DEFAULT_LEVEL_RATIOS",
]

#: Geometric rollup ratios: each level buckets 4x coarser than the previous.
DEFAULT_LEVEL_RATIOS = (1, 4, 16, 64)

_EMPTY = np.empty(0, dtype=np.float64)


class PyramidError(RuntimeError):
    """Base class for pyramid failures."""


class PyramidDriftError(PyramidError):
    """A rollup level disagrees with a from-scratch re-bucket of the base."""


@dataclass(frozen=True)
class LevelStats:
    """Accounting for one rollup level."""

    ratio: int
    retained: int
    completed: int
    evicted: int
    partial_values: int


@dataclass(frozen=True)
class PyramidStats:
    """Accounting across all levels of one pyramid."""

    total_appended: int
    levels: tuple[LevelStats, ...]

    @property
    def retained_values(self) -> int:
        """Total floats retained across every level (memory proxy)."""
        return sum(level.retained + level.partial_values for level in self.levels)


class PyramidLevel:
    """One rollup level: bucket means at a fixed ratio, maintained incrementally.

    ``completed`` counts every bucket ever finished (global bucket indices);
    the retained window is the most recent ``capacity`` of them.  The open
    bucket's raw values are carried over between ``extend`` calls so a bucket
    straddling two calls is reduced exactly as if its values had arrived
    together.
    """

    __slots__ = (
        "ratio",
        "capacity",
        "_means",
        "_times",
        "_tail_values",
        "_tail_times",
        "completed",
        "evicted",
    )

    def __init__(self, ratio: int, capacity: int) -> None:
        if ratio < 1:
            raise ValueError(f"ratio must be >= 1, got {ratio}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.ratio = ratio
        self.capacity = capacity
        self._means = RollingArray(capacity)
        self._times = RollingArray(capacity)
        self._tail_values = _EMPTY
        self._tail_times = _EMPTY
        self.completed = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._means)

    @property
    def first_retained(self) -> int:
        """Global index of the oldest retained bucket."""
        return self.completed - len(self._means)

    @property
    def partial_values(self) -> int:
        """Base values carried in the open (incomplete) bucket."""
        return self._tail_values.size

    def values(self) -> np.ndarray:
        """Means of the retained buckets, oldest first (a copy)."""
        return self._means.view().copy()

    def timestamps(self) -> np.ndarray:
        """First base timestamp of each retained bucket (a copy)."""
        return self._times.view().copy()

    def values_view(self) -> np.ndarray:
        """The retained means without a copy; valid until the next extend."""
        return self._means.view()

    def timestamps_view(self) -> np.ndarray:
        return self._times.view()

    def extend(self, values: np.ndarray, timestamps: np.ndarray) -> None:
        """Fold a batch of base values in, completing any filled buckets."""
        if values.size == 0:
            return
        if self.ratio == 1:
            self._append_buckets(values, timestamps)
            return
        ratio = self.ratio
        combined = np.concatenate([self._tail_values, values])
        combined_times = np.concatenate([self._tail_times, timestamps])
        full = combined.size // ratio
        if full:
            span = full * ratio
            # The canonical reduction — bucket values have exactly one
            # definition, shared with the direct pre-aggregation path.
            means = bucket_means(combined[:span], ratio)
            self._append_buckets(means, combined_times[:span:ratio])
            self._tail_values = combined[span:].copy()
            self._tail_times = combined_times[span:].copy()
        else:
            self._tail_values = combined
            self._tail_times = combined_times

    def _append_buckets(self, means: np.ndarray, starts: np.ndarray) -> None:
        self._means.append_many(np.ascontiguousarray(means))
        self._times.append_many(np.ascontiguousarray(starts))
        self.completed += means.size
        overflow = len(self._means) - self.capacity
        if overflow > 0:
            self._means.popleft(overflow)
            self._times.popleft(overflow)
            self.evicted += overflow

    def replace_retained(self, means: np.ndarray, starts: np.ndarray) -> None:
        """Install *means* as the retained bucket suffix ending at ``completed``.

        Used by :meth:`Pyramid.rebuild`; ``completed`` is preserved (the
        buckets are the same buckets, recomputed), eviction accounting counts
        any no-longer-covered leading buckets as evicted.
        """
        previously_retained = len(self._means)
        self._means.clear()
        self._times.clear()
        self._means.append_many(np.ascontiguousarray(means))
        self._times.append_many(np.ascontiguousarray(starts))
        if means.size < previously_retained:
            self.evicted += previously_retained - means.size

    def clear(self) -> None:
        self._means.clear()
        self._times.clear()
        self._tail_values = _EMPTY
        self._tail_times = _EMPTY
        self.completed = 0
        self.evicted = 0

    def state_dict(self) -> dict:
        """Retained buckets, the open bucket's carry-over, and the counters."""
        return {
            "ratio": self.ratio,
            "capacity": self.capacity,
            "means": self._means.view().copy(),
            "times": self._times.view().copy(),
            "tail_values": self._tail_values.copy(),
            "tail_times": self._tail_times.copy(),
            "completed": self.completed,
            "evicted": self.evicted,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PyramidLevel":
        """Rebuild a level from :meth:`state_dict` output (exact resume)."""
        level = cls(ratio=int(state["ratio"]), capacity=int(state["capacity"]))
        level._means.append_many(np.asarray(state["means"], dtype=np.float64))
        level._times.append_many(np.asarray(state["times"], dtype=np.float64))
        level._tail_values = np.asarray(state["tail_values"], dtype=np.float64).copy()
        level._tail_times = np.asarray(state["tail_times"], dtype=np.float64).copy()
        level.completed = int(state["completed"])
        level.evicted = int(state["evicted"])
        return level

    def __repr__(self) -> str:
        return (
            f"PyramidLevel(ratio={self.ratio}, retained={len(self)}/{self.capacity}, "
            f"completed={self.completed}, partial={self.partial_values})"
        )


class Pyramid:
    """A multi-resolution rollup store over a sliding window of base values.

    Parameters
    ----------
    capacity:
        Base values retained (the mirror of the consumer's window, e.g. the
        streaming operator's ``resolution`` in panes).
    level_ratios:
        Rollup bucket sizes.  Ratio 1 (the base mirror) is always present;
        the remaining ratios should grow geometrically (the default
        1/4/16/64 keeps every view's residual re-bucket small).
    """

    def __init__(self, capacity: int, level_ratios=DEFAULT_LEVEL_RATIOS) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        ratios = sorted({int(r) for r in level_ratios} | {1})
        if ratios[0] < 1:
            raise ValueError(f"level ratios must be >= 1, got {ratios[0]}")
        self.capacity = capacity
        self.level_ratios = tuple(ratios)
        self._levels: dict[int, PyramidLevel] = {}
        for ratio in self.level_ratios:
            level_capacity = capacity if ratio == 1 else -(-capacity // ratio) + 1
            self._levels[ratio] = PyramidLevel(ratio, level_capacity)
        self._base = self._levels[1]

    # -- ingest ----------------------------------------------------------------

    @property
    def total_appended(self) -> int:
        """Base values ever ingested — the version counter for view caches."""
        return self._base.completed

    def append(self, value: float, timestamp: float | None = None) -> None:
        """Fold one base value in (convenience wrapper over :meth:`extend`)."""
        self.extend([value], None if timestamp is None else [timestamp])

    def extend(self, values, timestamps=None) -> None:
        """Fold a batch of base values into every level, O(len x levels).

        *timestamps* defaults to the global base index (as float64), so a
        pyramid fed values alone still has a consistent time axis.
        """
        vs = np.asarray(values, dtype=np.float64)
        if vs.ndim != 1:
            raise ValueError(f"expected a 1-D batch, got shape {vs.shape}")
        if timestamps is None:
            ts = np.arange(
                self.total_appended,
                self.total_appended + vs.size,
                dtype=np.float64,
            )
        else:
            ts = np.asarray(timestamps, dtype=np.float64)
            if ts.shape != vs.shape:
                raise ValueError(
                    f"timestamps and values must have equal lengths, "
                    f"got {ts.size} and {vs.size}"
                )
        for level in self._levels.values():
            level.extend(vs, ts)

    def clear(self) -> None:
        """Drop all state (e.g. the consumer's window was reset)."""
        for level in self._levels.values():
            level.clear()

    @classmethod
    def build_from(
        cls,
        values,
        timestamps=None,
        capacity: int | None = None,
        level_ratios=DEFAULT_LEVEL_RATIOS,
    ) -> "Pyramid":
        """Bulk-construct a pyramid over a full history in one pass.

        Level maintenance is batch-granularity-independent (each level
        carries its open bucket's raw tail and completes buckets with the
        canonical :func:`~repro.core.preaggregation.bucket_means`
        reduction), so one bulk :meth:`extend` yields levels bit-identical
        to feeding the same history value by value — this constructor is
        the backfill-lane spelling of that fact.  *capacity* defaults to
        the history length (retain everything).
        """
        vs = np.asarray(values, dtype=np.float64)
        if vs.ndim != 1:
            raise ValueError(f"expected a 1-D history, got shape {vs.shape}")
        if capacity is None:
            capacity = max(vs.size, 1)
        pyramid = cls(capacity=capacity, level_ratios=level_ratios)
        pyramid.extend(vs, timestamps)
        return pyramid

    # -- serialization ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Every level's buckets and carry-over (see :mod:`repro.persist`).

        The maintenance path is exact, so a pyramid restored by
        :meth:`from_state` completes, evicts, and serves views bit-identically
        to an uninterrupted one fed the same subsequent values.
        """
        return {
            "capacity": self.capacity,
            "level_ratios": list(self.level_ratios),
            "levels": [self._levels[ratio].state_dict() for ratio in self.level_ratios],
        }

    @classmethod
    def from_state(cls, state: dict) -> "Pyramid":
        """Rebuild a pyramid from :meth:`state_dict` output (exact resume)."""
        pyramid = cls(
            capacity=int(state["capacity"]),
            level_ratios=tuple(int(r) for r in state["level_ratios"]),
        )
        for level_state in state["levels"]:
            restored = PyramidLevel.from_state(level_state)
            pyramid._levels[restored.ratio] = restored
        pyramid._base = pyramid._levels[1]
        return pyramid

    # -- introspection ---------------------------------------------------------

    def level(self, ratio: int) -> PyramidLevel:
        """The rollup level at *ratio* (KeyError when not configured)."""
        return self._levels[ratio]

    @property
    def window_start(self) -> int:
        """Global base index of the oldest retained base value."""
        return self._base.first_retained

    @property
    def window_length(self) -> int:
        """Base values currently retained (== the consumer's window length)."""
        return len(self._base)

    def base_values(self) -> np.ndarray:
        """The retained base window, oldest first (a copy)."""
        return self._base.values()

    def base_timestamps(self) -> np.ndarray:
        return self._base.timestamps()

    @property
    def stats(self) -> PyramidStats:
        return PyramidStats(
            total_appended=self.total_appended,
            levels=tuple(
                LevelStats(
                    ratio=level.ratio,
                    retained=len(level),
                    completed=level.completed,
                    evicted=level.evicted,
                    partial_values=level.partial_values,
                )
                for level in self._levels.values()
            ),
        )

    def __repr__(self) -> str:
        return (
            f"Pyramid(capacity={self.capacity}, ratios={self.level_ratios}, "
            f"window={self.window_length}, appended={self.total_appended})"
        )

    # -- view resolution -------------------------------------------------------

    def view_ratio(self, resolution: int) -> int:
        """The point-to-pixel ratio a view at *resolution* uses right now.

        Delegates to the direct pipeline's one rule
        (:func:`repro.core.preaggregation.expected_ratio`): 1 below the
        oversampling threshold, ``floor(window / resolution)`` above it.
        """
        return expected_ratio(self.window_length, resolution)

    def resolve_level(self, ratio: int) -> tuple[int, int]:
        """``(level_ratio, residual)`` a view at effective *ratio* serves from.

        The nearest coarser level whose ratio divides the requested one and
        whose retained, window-aligned buckets can fill at least one view
        bucket right now; ratio 1 always qualifies, so resolution never
        fails — it only degrades to a direct re-bucket of the base mirror.
        This is exactly the selection :meth:`view` makes (one shared
        implementation), so predicting a view's serving level is reliable.
        """
        plan = self._serving_plan(ratio)
        return plan[0].ratio, plan[1]

    def _serving_plan(self, ratio: int) -> tuple[PyramidLevel, int, int, int]:
        """``(level, residual, first_bucket, view_buckets)`` for *ratio*.

        Prefers the coarsest dividing level, degrading to a finer one when
        head alignment leaves it unable to fill even one view bucket (tiny
        windows); the base level always can (``window // ratio >= 1`` by
        construction of the ratio).
        """
        if ratio < 1:
            raise ValueError(f"ratio must be >= 1, got {ratio}")
        window_start = self.window_start
        divisors = [r for r in self.level_ratios if r <= ratio and ratio % r == 0]
        for level_ratio in reversed(divisors):
            residual = ratio // level_ratio
            level = self._levels[level_ratio]
            first_needed = -(-window_start // level_ratio)
            first = max(first_needed, level.first_retained)
            buckets = (level.completed - first) // residual
            if buckets >= 1:
                return level, residual, first, buckets
        raise PyramidError(
            f"window of {self.window_length} base values cannot fill one "
            f"ratio-{ratio} bucket"
        )

    def view(self, spec: ViewSpec | int) -> PyramidView:
        """Resolve one client view; see :class:`~repro.pyramid.view.ViewSpec`.

        The returned values equal direct bucketing of the covered base span
        (``bucket_means(base[start:end], ratio)``): bit-identical when a
        level matches the ratio exactly (``residual == 1``, including the
        always-available base level), within 1e-9 otherwise.  The covered
        span is bucket-aligned: up to ``level_ratio - 1`` of the oldest
        window values fall before the first whole retained bucket and are
        not served (the window head is mid-eviction anyway).
        """
        if isinstance(spec, (int, np.integer)):
            spec = ViewSpec(resolution=int(spec))
        n = self.window_length
        if n == 0:
            raise PyramidError("cannot view an empty pyramid")
        ratio = self.view_ratio(spec.resolution)
        window_start = self.window_start
        total = self._base.completed
        if ratio == 1:
            return PyramidView(
                values=self._base.values(),
                timestamps=self._base.timestamps(),
                ratio=1,
                level_ratio=1,
                residual=1,
                base_start=window_start,
                base_end=total,
                partial_points=0,
            )
        level, residual, first, buckets = self._serving_plan(ratio)
        level_ratio = level.ratio
        offset = first - level.first_retained
        span = buckets * residual
        # The residual re-bucket goes through the same canonical reduction
        # (ratio 1 degenerates to a copy).
        values = bucket_means(level.values_view()[offset : offset + span], residual)
        timestamps = level.timestamps_view()[offset : offset + span : residual].copy()
        base_start = first * level_ratio
        base_end = base_start + buckets * ratio
        partial_points = 0
        if spec.include_partial:
            remainder = total - base_end
            if remainder > 0:
                base_view = self._base.values_view()
                tail = base_view[n - remainder :]
                values = np.append(values, tail.mean())
                timestamps = np.append(
                    timestamps,
                    self._base.timestamps_view()[n - remainder],
                )
                partial_points = remainder
                base_end = total
        return PyramidView(
            values=values,
            timestamps=timestamps,
            ratio=ratio,
            level_ratio=level_ratio,
            residual=residual,
            base_start=base_start,
            base_end=base_end,
            partial_points=partial_points,
        )

    # -- drift guard -----------------------------------------------------------

    def _coverable(self, level: PyramidLevel) -> tuple[int, int, np.ndarray]:
        """``(first_bucket, count, expected_means)`` recomputable from base."""
        window_start = self.window_start
        first = max(-(-window_start // level.ratio), level.first_retained)
        count = level.completed - first
        if count <= 0:
            return first, 0, _EMPTY
        base_view = self._base.values_view()
        start = first * level.ratio - window_start
        expected = bucket_means(base_view[start : start + count * level.ratio], level.ratio)
        return first, count, expected

    def verify_levels(self, tolerance: float = 0.0) -> int:
        """Recompute every coverable bucket from the base mirror and compare.

        The pyramid's maintenance is exact, so the default tolerance is 0.0
        — any disagreement at all raises :class:`PyramidDriftError`.  Returns
        the number of buckets checked.  This is the same escape hatch
        ``verify_incremental`` provides for the rolling window sums.
        """
        checked = 0
        for level in self._levels.values():
            if level.ratio == 1:
                continue
            first, count, expected = self._coverable(level)
            if count == 0:
                continue
            offset = first - level.first_retained
            stored = level.values_view()[offset : offset + count]
            diff = np.abs(stored - expected)
            worst = float(diff.max()) if diff.size else 0.0
            if worst > tolerance:
                bucket = first + int(np.argmax(diff))
                raise PyramidDriftError(
                    f"level ratio {level.ratio} bucket {bucket} drifted by "
                    f"{worst!r} (> {tolerance!r})"
                )
            checked += count
        return checked

    def rebuild(self) -> None:
        """Recompute every level's retained buckets from the base mirror.

        After a rebuild each rollup level holds exactly the from-scratch
        bucketing of the retained base window (buckets older than the window
        are dropped — they are no longer recomputable).  The incremental
        path already produces these exact values, so this exists as the same
        belt-and-braces recovery ``RollingWindowState.rebuild`` provides.
        """
        window_start = self.window_start
        base_view = self._base.values_view()
        base_times = self._base.timestamps_view()
        for level in self._levels.values():
            if level.ratio == 1:
                continue
            first, count, expected = self._coverable(level)
            start = first * level.ratio - window_start
            starts = base_times[start : start + count * level.ratio : level.ratio]
            level.replace_retained(expected, np.asarray(starts))
            # The open bucket's carry-over is recomputable only while its raw
            # values are still inside the base mirror; otherwise the carried
            # tail (exact by construction) is kept as-is.
            tail_base = level.completed * level.ratio - window_start
            if tail_base >= 0:
                level._tail_values = base_view[tail_base:].copy()
                level._tail_times = base_times[tail_base:].copy()
