"""AsapServer: the full hub API served over TCP, with server-push frames.

One asyncio server fronts one hub — a :class:`~repro.service.StreamHub` or a
:class:`~repro.cluster.ShardedHub`; the server is tier-agnostic because both
speak the same session API.  Every connection gets:

* a **hello** on accept (schema version, the hub's checkpoint kind, library
  version, message-size limit) — a client built against a different
  checkpoint schema cannot even decode it, which *is* the version check;
* **request/response** over the ops ``create`` / ``ingest`` / ``backfill`` /
  ``tick`` / ``snapshot`` / ``close`` / ``stream_ids`` / ``len`` /
  ``contains`` / ``stats`` / ``state`` / ``subscribe`` / ``unsubscribe`` /
  ``server_stats`` / ``ping``.  Requests are processed in order per
  connection, so a client may **pipeline** (write many, then read many);
* **server-push subscriptions**: at every refresh boundary (inline ingest
  emissions, coalesced ticks, backfill closing frames, close-flush frames —
  the hubs' frame-observer hook) each matching subscription gets a push
  message.  A plain subscription carries the frames themselves; a
  ``resolution=`` subscription carries the freshly served
  multi-resolution view instead, computed once per (stream, resolution)
  per boundary and shared across subscribers.

**Backpressure.**  Pushes are queued per connection in a bounded outbox
(``subscribe_queue`` messages) drained by a writer task; a slow reader
drops the *oldest* queued push and the drop is counted — visible as a
``seq`` gap plus the running ``push_dropped`` counter on every later push.
Responses are never queued behind pushes and are never dropped.

**Hub calls run on the event loop thread.**  That serializes all remote
operations, which is exactly the concurrency contract ``ShardedHub``
requires (it is coordinator-single-threaded by design); ``StreamHub`` is
internally locked either way.  External ingest threads (a hub shared
between in-process producers and this server) are safe: the observer hops
frames onto the loop with ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import threading
from dataclasses import dataclass

from ..errors import (
    ConnectionClosedError,
    HubAtCapacityError,
    NetError,
    WireProtocolError,
)
from ..persist import codec
from ..spec import AsapSpec
from . import wire

__all__ = ["AsapServer", "ServerHandle", "serve"]

#: How long a graceful stop waits for each connection's queued pushes to
#: drain before force-closing the socket.
DRAIN_TIMEOUT = 5.0


class _Subscription:
    __slots__ = ("sub_id", "stream_id", "resolution", "include_partial", "seq")

    def __init__(self, sub_id, stream_id, resolution, include_partial):
        self.sub_id = sub_id
        self.stream_id = stream_id
        self.resolution = resolution
        self.include_partial = include_partial
        self.seq = 0


class _Connection:
    __slots__ = ("writer", "outbox", "wakeup", "subs", "push_dropped", "closing", "writer_task")

    def __init__(self, writer):
        self.writer = writer
        self.outbox: collections.deque[bytes] = collections.deque()
        self.wakeup = asyncio.Event()
        self.subs: dict[int, _Subscription] = {}
        self.push_dropped = 0
        self.closing = False
        self.writer_task: asyncio.Task | None = None

    def reserve_push_slot(self, limit: int) -> int:
        """Make room for one push (drop-oldest); returns how many dropped.

        Called *before* the push is encoded, so the message's
        ``push_dropped`` field covers every drop that precedes it — the
        receiver's counter is exact at each delivery.
        """
        dropped = 0
        while len(self.outbox) >= limit:
            self.outbox.popleft()
            self.push_dropped += 1
            dropped += 1
        return dropped

    def enqueue_push(self, message: bytes) -> None:
        self.outbox.append(message)
        self.wakeup.set()


class AsapServer:
    """Serve one hub's API over TCP; see the module docstring.

    ``max_connections`` and ``subscribe_queue`` default to the hub's
    ``default_config`` spec (the serving knobs added in schema 6), so a
    cluster provisioned through one :class:`~repro.spec.AsapSpec` carries
    its serving limits into the network tier with no extra wiring.
    """

    def __init__(
        self,
        hub,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int | None = None,
        subscribe_queue: int | None = None,
        max_message_bytes: int = codec.MAX_MESSAGE_BYTES,
    ) -> None:
        spec = getattr(hub, "default_config", None) or AsapSpec()
        self.hub = hub
        self.max_connections = max_connections if max_connections is not None else spec.max_connections
        self.subscribe_queue = subscribe_queue if subscribe_queue is not None else spec.subscribe_queue
        if self.max_connections < 1:
            raise NetError(f"max_connections must be >= 1, got {self.max_connections}")
        if self.subscribe_queue < 1:
            raise NetError(f"subscribe_queue must be >= 1, got {self.subscribe_queue}")
        self.max_message_bytes = max_message_bytes
        self._host = host
        self._port = port
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._address: tuple[str, int] | None = None
        self._closed = False
        self._connections: set[_Connection] = set()
        self._next_sub_id = 1
        self._connections_served = 0
        self._connections_rejected = 0
        self._requests_served = 0
        self._pushes_sent = 0
        self._push_dropped = 0

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> "AsapServer":
        if self._server is not None:
            raise NetError("server already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        self._address = self._server.sockets[0].getsockname()[:2]
        self.hub.add_frame_observer(self._observe_frames)
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise NetError("server not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"tcp://{host}:{port}"

    async def stop(self, flush: bool = True) -> None:
        """Stop serving; with *flush*, run one final hub tick first so every
        deferred refresh is emitted and pushed, then drain each outbox
        (bounded by :data:`DRAIN_TIMEOUT`) before closing the sockets."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
        if flush:
            # A downed shard must not block shutdown; its frames are simply
            # not emitted (the same contract as ShardedHub.tick itself).
            with contextlib.suppress(Exception):
                self.hub.tick()
        self.hub.remove_frame_observer(self._observe_frames)
        for conn in list(self._connections):
            conn.closing = True
            conn.wakeup.set()
        for conn in list(self._connections):
            if conn.writer_task is not None:
                try:
                    await asyncio.wait_for(conn.writer_task, timeout=DRAIN_TIMEOUT)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    conn.writer_task.cancel()
            with contextlib.suppress(Exception):
                conn.writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self._connections.clear()

    # -- connection handling ----------------------------------------------------

    def _hello_state(self) -> dict:
        from .. import __version__

        return {
            "msg": "hello",
            "schema": codec.SCHEMA_VERSION,
            "hub_kind": getattr(self.hub, "checkpoint_kind", "unknown"),
            "server": "repro-asap",
            "version": __version__,
            "max_message_bytes": self.max_message_bytes,
        }

    async def _handle(self, reader, writer) -> None:
        if self._closed or len(self._connections) >= self.max_connections:
            self._connections_rejected += 1
            error = HubAtCapacityError(
                f"server is at max_connections={self.max_connections}"
            )
            with contextlib.suppress(Exception):
                writer.write(wire.encode_message({"msg": "error", "error": wire.error_state(error)}))
                await writer.drain()
                writer.close()
            return
        conn = _Connection(writer)
        self._connections.add(conn)
        self._connections_served += 1
        conn.writer_task = asyncio.ensure_future(self._push_writer(conn))
        try:
            writer.write(wire.encode_message(self._hello_state(), limit=self.max_message_bytes))
            await writer.drain()
            while not self._closed:
                message = await self._read_message(reader)
                response = self._process(conn, message)
                writer.write(wire.encode_message(response, limit=self.max_message_bytes))
                await writer.drain()
        except ConnectionClosedError:
            pass  # the client hung up — every op it completed has applied
        except WireProtocolError as exc:
            # Garbage, truncation, oversize: name the problem, then hang up.
            with contextlib.suppress(Exception):
                writer.write(wire.encode_message({"msg": "error", "error": wire.error_state(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._drop_connection(conn)

    async def _read_message(self, reader) -> dict:
        try:
            header = await reader.readexactly(codec.WIRE_HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                raise ConnectionClosedError("peer closed the connection") from exc
            raise WireProtocolError(
                f"truncated wire header: connection closed after "
                f"{len(exc.partial)} of {codec.WIRE_HEADER_SIZE} bytes"
            ) from exc
        length = codec.parse_header(header, limit=self.max_message_bytes)
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise WireProtocolError(
                f"truncated wire message: connection closed after "
                f"{len(exc.partial)} of {length} payload bytes"
            ) from exc
        return wire.decode_payload(payload)

    def _drop_connection(self, conn: _Connection) -> None:
        self._connections.discard(conn)
        conn.subs.clear()
        conn.closing = True
        conn.wakeup.set()
        with contextlib.suppress(Exception):
            conn.writer.close()

    async def _push_writer(self, conn: _Connection) -> None:
        try:
            while True:
                await conn.wakeup.wait()
                conn.wakeup.clear()
                while conn.outbox:
                    data = conn.outbox.popleft()
                    conn.writer.write(data)
                    await conn.writer.drain()
                    self._pushes_sent += 1
                if conn.closing:
                    return
        except (ConnectionError, asyncio.CancelledError, RuntimeError):
            return

    # -- request dispatch -------------------------------------------------------

    def _process(self, conn: _Connection, message: dict) -> dict:
        if message.get("msg") != "request":
            raise WireProtocolError(
                f"expected a request, got message kind {message.get('msg')!r}"
            )
        request_id = message.get("id")
        op = str(message.get("op"))
        handler = self._OPS.get(op)
        self._requests_served += 1
        if handler is None:
            error = WireProtocolError(f"unknown op {op!r}")
            return {
                "msg": "response",
                "id": request_id,
                "ok": False,
                "error": wire.error_state(error),
            }
        try:
            result = handler(self, conn, message.get("args") or {})
            return {"msg": "response", "id": request_id, "ok": True, "result": result}
        except Exception as exc:
            return {
                "msg": "response",
                "id": request_id,
                "ok": False,
                "error": wire.error_state(exc),
            }

    def _op_create(self, conn, args) -> dict:
        config = args.get("config")
        if config is not None:
            config = AsapSpec.from_dict(config)
        history = args.get("history")
        if history is not None:
            history = (history["timestamps"], history["values"])
        stream_id = self.hub.create_stream(
            args.get("stream_id"),
            config=config,
            history=history,
            **(args.get("overrides") or {}),
        )
        return {"stream_id": stream_id}

    def _op_ingest(self, conn, args) -> dict:
        frames = self.hub.ingest(args["stream_id"], args["timestamps"], args["values"])
        return {"frames": wire.frames_state(frames)}

    def _op_backfill(self, conn, args) -> dict:
        result = self.hub.backfill(args["stream_id"], args["timestamps"], args["values"])
        return wire.backfill_state(result)

    def _op_tick(self, conn, args) -> dict:
        emitted = self.hub.tick()
        return {"frames": {sid: wire.frames_state(frames) for sid, frames in emitted.items()}}

    def _op_snapshot(self, conn, args) -> dict:
        resolution = args.get("resolution")
        snap = self.hub.snapshot(
            args["stream_id"],
            resolution=None if resolution is None else int(resolution),
            include_partial=bool(args.get("include_partial", False)),
        )
        return wire.snapshot_state(snap)

    def _op_close(self, conn, args) -> dict:
        frames = self.hub.close(args["stream_id"], flush=bool(args.get("flush", True)))
        return {"frames": wire.frames_state(frames)}

    def _op_stream_ids(self, conn, args) -> dict:
        return {"stream_ids": list(self.hub.stream_ids())}

    def _op_len(self, conn, args) -> dict:
        return {"count": len(self.hub)}

    def _op_contains(self, conn, args) -> dict:
        return {"contains": args["stream_id"] in self.hub}

    def _op_stats(self, conn, args) -> dict:
        return wire.hub_stats_state(self.hub.stats)

    def _op_state(self, conn, args) -> dict:
        return {
            "kind": getattr(self.hub, "checkpoint_kind", "unknown"),
            "state": self.hub.state_dict(),
        }

    def _op_subscribe(self, conn, args) -> dict:
        stream_id = str(args["stream_id"])
        if stream_id not in self.hub:
            from ..errors import UnknownStreamError

            raise UnknownStreamError(stream_id)
        resolution = args.get("resolution")
        sub = _Subscription(
            self._next_sub_id,
            stream_id,
            None if resolution is None else int(resolution),
            bool(args.get("include_partial", False)),
        )
        self._next_sub_id += 1
        conn.subs[sub.sub_id] = sub
        return {"subscription": sub.sub_id}

    def _op_unsubscribe(self, conn, args) -> dict:
        removed = conn.subs.pop(int(args["subscription"]), None)
        return {"removed": removed is not None}

    def _op_server_stats(self, conn, args) -> dict:
        return self.server_stats()

    def _op_ping(self, conn, args) -> dict:
        return {"pong": True}

    _OPS = {
        "create": _op_create,
        "ingest": _op_ingest,
        "backfill": _op_backfill,
        "tick": _op_tick,
        "snapshot": _op_snapshot,
        "close": _op_close,
        "stream_ids": _op_stream_ids,
        "len": _op_len,
        "contains": _op_contains,
        "stats": _op_stats,
        "state": _op_state,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
        "server_stats": _op_server_stats,
        "ping": _op_ping,
    }

    # -- push delivery ----------------------------------------------------------

    def _observe_frames(self, frames: dict) -> None:
        """Hub frame-observer callback; may fire on any thread."""
        loop = self._loop
        if loop is None:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._dispatch_frames(frames)
        else:
            with contextlib.suppress(RuntimeError):  # loop already closed
                loop.call_soon_threadsafe(self._dispatch_frames, frames)

    def _dispatch_frames(self, frames: dict) -> None:
        if not self._connections:
            return
        # Views are computed once per (stream, resolution, partial) per
        # refresh boundary and shared across every subscriber — the same
        # bytes a snapshot() call would serve right now.
        view_cache: dict[tuple, dict | None] = {}
        frame_cache: dict[str, list] = {}
        for conn in list(self._connections):
            if conn.closing:
                continue
            for sub in list(conn.subs.values()):
                if sub.stream_id not in frames:
                    continue
                if sub.resolution is None:
                    payload = frame_cache.get(sub.stream_id)
                    if payload is None:
                        payload = wire.frames_state(frames[sub.stream_id])
                        frame_cache[sub.stream_id] = payload
                    body = {"type": "frames", "frames": payload}
                else:
                    key = (sub.stream_id, sub.resolution, sub.include_partial)
                    if key not in view_cache:
                        try:
                            view_cache[key] = wire.snapshot_state(
                                self.hub.snapshot(
                                    sub.stream_id,
                                    resolution=sub.resolution,
                                    include_partial=sub.include_partial,
                                )
                            )
                        except Exception:
                            # Not servable at this width yet (or the stream
                            # just closed): skip this boundary, not the sub.
                            view_cache[key] = None
                    if view_cache[key] is None:
                        continue
                    body = {"type": "view", "view": view_cache[key]}
                sub.seq += 1
                self._push_dropped += conn.reserve_push_slot(self.subscribe_queue)
                message = wire.encode_message(
                    {
                        "msg": "push",
                        "subscription": sub.sub_id,
                        "stream_id": sub.stream_id,
                        "seq": sub.seq,
                        "push_dropped": conn.push_dropped,
                        "payload": body,
                    },
                    limit=self.max_message_bytes,
                )
                conn.enqueue_push(message)

    # -- accounting -------------------------------------------------------------

    def server_stats(self) -> dict:
        """Lifetime serving counters (plain dict, wire-friendly)."""
        return {
            "connections_open": len(self._connections),
            "connections_served": self._connections_served,
            "connections_rejected": self._connections_rejected,
            "requests_served": self._requests_served,
            "subscriptions_active": sum(len(c.subs) for c in self._connections),
            "pushes_sent": self._pushes_sent,
            "push_dropped": self._push_dropped,
        }

    def __repr__(self) -> str:
        where = self._address or (self._host, self._port)
        return f"AsapServer({where[0]}:{where[1]}, connections={len(self._connections)})"


@dataclass
class ServerHandle:
    """A running server on a background thread; see :func:`serve`."""

    server: AsapServer
    _loop: asyncio.AbstractEventLoop
    _thread: threading.Thread
    _stopped: bool = False

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, flush: bool = True, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.server.stop(flush=flush), self._loop)
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(hub, host: str = "127.0.0.1", port: int = 0, **kwargs) -> ServerHandle:
    """Start an :class:`AsapServer` on a daemon thread; returns its handle.

    ``port=0`` binds an ephemeral port; read the actual address off
    ``handle.address`` / ``handle.url``.  The handle is a context manager
    whose exit performs a graceful flush-and-stop.
    """
    started = threading.Event()
    box: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = AsapServer(hub, host, port, **kwargs)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["loop"], box["server"] = loop, server
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="asap-server", daemon=True)
    thread.start()
    if not started.wait(30.0):
        raise NetError("server did not start within 30s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
