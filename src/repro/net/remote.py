"""RemoteBackend: the hub API spoken to an :class:`~repro.net.AsapServer`.

This is the object ``repro.connect("tcp://host:port")`` hands to the
ordinary :class:`~repro.client.Client` façade — it duck-types the hub
surface (``create_stream`` / ``ingest`` / ``backfill`` / ``tick`` /
``snapshot`` / ``close`` / ``stream_ids`` / ``stats`` / ``state_dict`` /
``checkpoint_kind``), so everything layered on hubs works unchanged over
the network, including :func:`repro.persist.checkpoint` (the ``state`` op
returns the server hub's full state tree; the checkpoint is byte-identical
to one taken in-process).

The transport is a single blocking socket guarded by a lock: requests are
written, responses are read in order, and any **push** messages that arrive
interleaved (the server emits them at refresh boundaries, regardless of
what the client is doing) are stashed and surfaced through
:meth:`RemoteBackend.pushes`.  :meth:`call_many` pipelines a batch of
requests — all writes first, then all reads — which is where a network
client earns back round-trip latency.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import select
import socket
import threading
import time
from dataclasses import dataclass

from ..errors import ConnectionClosedError, NetError, WireProtocolError
from ..persist import codec
from . import wire

__all__ = ["RemoteBackend", "PushEvent", "parse_tcp_url"]


def parse_tcp_url(url: str) -> tuple[str, int]:
    """``"tcp://host:port"`` -> ``(host, port)`` (IPv6 hosts in brackets)."""
    if not url.startswith("tcp://"):
        raise NetError(f"remote URL must look like tcp://host:port, got {url!r}")
    rest = url[len("tcp://") :]
    host, sep, port = rest.rpartition(":")
    if not sep or not port.isdigit() or not host:
        raise NetError(f"remote URL must look like tcp://host:port, got {url!r}")
    return host.strip("[]"), int(port)


@dataclass(frozen=True)
class PushEvent:
    """One server-push delivery.

    Exactly one of ``frames`` (a plain subscription: the refresh-boundary
    frames themselves) or ``view`` (a ``resolution=`` subscription: the
    freshly served :class:`~repro.service.ResolutionSnapshot`) is set.
    ``push_dropped`` is the connection's running drop counter at send time —
    it advancing (equivalently, a gap in ``seq``) means this reader was too
    slow and the server's bounded outbox dropped older pushes.
    """

    subscription: int
    stream_id: str
    seq: int
    push_dropped: int
    frames: tuple | None = None
    view: object | None = None


class RemoteBackend:
    """A connected client of one :class:`~repro.net.AsapServer`.

    Not a public entry point — use ``repro.connect("tcp://host:port")`` —
    but usable directly when the raw hub surface is wanted without the
    :class:`~repro.client.Client` façade.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        spec=None,
        timeout: float = 30.0,
        max_message_bytes: int = codec.MAX_MESSAGE_BYTES,
    ) -> None:
        self._timeout = float(timeout)
        self._max_message_bytes = max_message_bytes
        self._default_config = spec
        self._lock = threading.RLock()
        self._stash: collections.deque[PushEvent] = collections.deque()
        self._request_ids = itertools.count(1)
        self._closed = False
        try:
            self._sock = socket.create_connection((host, port), timeout=self._timeout)
        except OSError as exc:
            raise ConnectionClosedError(
                f"could not connect to tcp://{host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(self._timeout)
        with contextlib.suppress(OSError):
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            hello = self._read_message()
        except Exception:
            self._sock.close()
            raise
        if hello.get("msg") == "error":
            self._sock.close()
            raise wire.error_from_state(hello["error"])
        if hello.get("msg") != "hello":
            self._sock.close()
            raise WireProtocolError(f"expected a hello, got {hello.get('msg')!r}")
        self.hello = hello
        self._hub_kind = str(hello.get("hub_kind", "streamhub"))

    # -- the hub duck-type surface ----------------------------------------------

    @property
    def default_config(self):
        return self._default_config

    @property
    def checkpoint_kind(self) -> str:
        """The *server* hub's checkpoint kind (from the handshake), so
        ``persist.checkpoint`` stamps a remote-taken checkpoint exactly as an
        in-process one — restorable into the same tier."""
        return self._hub_kind

    def create_stream(self, stream_id=None, config=None, history=None, **overrides) -> str:
        args: dict = {"overrides": dict(overrides)}
        if stream_id is not None:
            args["stream_id"] = str(stream_id)
        if config is not None:
            args["config"] = config.to_dict()
        if history is not None:
            timestamps, values = history
            args["history"] = wire.arrays_state(timestamps, values)
        return str(self._call("create", args)["stream_id"])

    def ingest(self, stream_id: str, timestamps, values) -> list:
        args = {"stream_id": str(stream_id), **wire.arrays_state(timestamps, values)}
        return wire.frames_from_state(self._call("ingest", args)["frames"])

    def ingest_point(self, stream_id: str, timestamp: float, value: float) -> list:
        return self.ingest(stream_id, [timestamp], [value])

    def backfill(self, stream_id: str, timestamps, values):
        args = {"stream_id": str(stream_id), **wire.arrays_state(timestamps, values)}
        return wire.backfill_from_state(self._call("backfill", args))

    def tick(self) -> dict:
        emitted = self._call("tick")["frames"]
        return {str(sid): wire.frames_from_state(frames) for sid, frames in emitted.items()}

    def snapshot(self, stream_id: str, resolution: int | None = None, include_partial: bool = False):
        state = self._call(
            "snapshot",
            {
                "stream_id": str(stream_id),
                "resolution": resolution,
                "include_partial": bool(include_partial),
            },
        )
        return wire.snapshot_from_state(state)

    def close(self, stream_id: str, flush: bool = True) -> list:
        args = {"stream_id": str(stream_id), "flush": bool(flush)}
        return wire.frames_from_state(self._call("close", args)["frames"])

    def stream_ids(self) -> list[str]:
        return [str(sid) for sid in self._call("stream_ids")["stream_ids"]]

    def __len__(self) -> int:
        return int(self._call("len")["count"])

    def __contains__(self, stream_id: str) -> bool:
        return bool(self._call("contains", {"stream_id": str(stream_id)})["contains"])

    @property
    def stats(self):
        return wire.hub_stats_from_state(self._call("stats"))

    def state_dict(self) -> dict:
        """The server hub's full checkpoint state, fetched over the wire."""
        reply = self._call("state")
        if reply["kind"] != self._hub_kind:
            raise WireProtocolError(
                f"server reported kind {reply['kind']!r} at state time but "
                f"{self._hub_kind!r} at handshake"
            )
        return reply["state"]

    # -- subscriptions -----------------------------------------------------------

    def subscribe(
        self, stream_id: str, resolution: int | None = None, include_partial: bool = False
    ) -> int:
        """Ask the server to push this stream's refresh boundaries; returns
        the subscription id.  With *resolution*, each push carries the
        freshly served multi-resolution view instead of raw frames."""
        args = {
            "stream_id": str(stream_id),
            "resolution": resolution,
            "include_partial": bool(include_partial),
        }
        return int(self._call("subscribe", args)["subscription"])

    def unsubscribe(self, subscription: int) -> bool:
        return bool(self._call("unsubscribe", {"subscription": int(subscription)})["removed"])

    def pushes(self, timeout: float = 0.0) -> list:
        """Drain delivered pushes, as :class:`PushEvent` in arrival order.

        With ``timeout=0`` returns whatever has already arrived (stashed
        during request handling or readable right now).  A positive timeout
        blocks until at least one event arrives or the deadline passes,
        then keeps draining without blocking.

        A server EOF while draining ends the stream quietly: everything
        pushed before the close (including a graceful stop's final flush)
        is returned, and the *next* request will raise
        :class:`~repro.errors.ConnectionClosedError`.
        """
        with self._lock:
            events = list(self._stash)
            self._stash.clear()
            deadline = time.monotonic() + float(timeout)
            while True:
                remaining = deadline - time.monotonic()
                wait = 0.0 if events else max(0.0, remaining)
                try:
                    message = self._poll_message(wait)
                except ConnectionClosedError:
                    return events
                if message is None:
                    if events or remaining <= 0:
                        return events
                    continue
                kind = message.get("msg")
                if kind == "push":
                    events.append(self._push_event(message))
                elif kind == "error":
                    raise wire.error_from_state(message["error"])
                else:
                    raise WireProtocolError(
                        f"unexpected {kind!r} message outside a request"
                    )

    def wait_pushes(self, count: int, timeout: float = 10.0) -> list:
        """Collect at least *count* pushes or give up at *timeout*."""
        events: list = []
        deadline = time.monotonic() + float(timeout)
        while len(events) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            events.extend(self.pushes(timeout=min(0.25, remaining)))
        return events

    # -- server-side introspection ----------------------------------------------

    def server_stats(self) -> dict:
        return self._call("server_stats")

    def ping(self) -> bool:
        return bool(self._call("ping")["pong"])

    # -- transport ---------------------------------------------------------------

    def call_many(self, calls: list) -> list:
        """Pipeline ``[(op, args), ...]``: write every request, then read
        every response in order.  One round trip's latency for the batch.
        Raises the first failed call's error after all responses are read
        (later results are still applied server-side either way)."""
        with self._lock:
            buffer = bytearray()
            ids = []
            for op, args in calls:
                request_id = next(self._request_ids)
                ids.append(request_id)
                buffer += wire.encode_message(
                    {"msg": "request", "id": request_id, "op": str(op), "args": args or {}},
                    limit=self._max_message_bytes,
                )
            self._sendall(bytes(buffer))
            results = []
            first_error = None
            for request_id in ids:
                try:
                    results.append(self._await_response(request_id))
                except (ConnectionClosedError, WireProtocolError):
                    raise  # transport is dead/desynced; nothing more to read
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                    results.append(None)
            if first_error is not None:
                raise first_error
            return results

    def _call(self, op: str, args: dict | None = None):
        with self._lock:
            request_id = next(self._request_ids)
            self._sendall(
                wire.encode_message(
                    {"msg": "request", "id": request_id, "op": op, "args": args or {}},
                    limit=self._max_message_bytes,
                )
            )
            return self._await_response(request_id)

    def _await_response(self, request_id: int):
        while True:
            message = self._read_message()
            kind = message.get("msg")
            if kind == "push":
                self._stash.append(self._push_event(message))
                continue
            if kind == "error":
                raise wire.error_from_state(message["error"])
            if kind == "response":
                if message.get("id") != request_id:
                    raise WireProtocolError(
                        f"response id {message.get('id')!r} does not match "
                        f"request id {request_id} (pipelining desync)"
                    )
                if message.get("ok"):
                    return message.get("result")
                raise wire.error_from_state(message["error"])
            raise WireProtocolError(f"unexpected message kind {kind!r}")

    def _push_event(self, message: dict) -> PushEvent:
        payload = message["payload"]
        frames = view = None
        flavour = payload.get("type")
        if flavour == "frames":
            frames = tuple(wire.frames_from_state(payload["frames"]))
        elif flavour == "view":
            view = wire.snapshot_from_state(dict(payload["view"]))
        else:
            raise WireProtocolError(f"unknown push payload type {flavour!r}")
        return PushEvent(
            subscription=int(message["subscription"]),
            stream_id=str(message["stream_id"]),
            seq=int(message["seq"]),
            push_dropped=int(message["push_dropped"]),
            frames=frames,
            view=view,
        )

    def _sendall(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionClosedError("this RemoteBackend is shut down")
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise ConnectionClosedError(f"send failed: {exc}") from exc

    def _read_exact(self, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            try:
                data = self._sock.recv(count - len(chunks))
            except socket.timeout as exc:
                raise NetError(
                    f"timed out after {self._timeout}s waiting for the server"
                ) from exc
            except OSError as exc:
                raise ConnectionClosedError(f"receive failed: {exc}") from exc
            if not data:
                raise ConnectionClosedError(
                    "server closed the connection"
                    if not chunks
                    else f"server closed the connection mid-message "
                    f"({len(chunks)} of {count} bytes)"
                )
            chunks.extend(data)
        return bytes(chunks)

    def _read_message(self) -> dict:
        header = self._read_exact(codec.WIRE_HEADER_SIZE)
        length = codec.parse_header(header, limit=self._max_message_bytes)
        return wire.decode_payload(self._read_exact(length))

    def _poll_message(self, timeout: float) -> dict | None:
        """One message if the socket turns readable within *timeout*."""
        if self._closed:
            raise ConnectionClosedError("this RemoteBackend is shut down")
        try:
            readable, _, _ = select.select([self._sock], [], [], max(0.0, timeout))
        except OSError as exc:
            raise ConnectionClosedError(f"socket poll failed: {exc}") from exc
        if not readable:
            return None
        return self._read_message()

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        """Close the connection (:meth:`Client.close` calls this)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "RemoteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        peer = "closed" if self._closed else "%s:%s" % self._sock.getpeername()[:2]
        return f"RemoteBackend({peer}, hub_kind={self._hub_kind!r})"
