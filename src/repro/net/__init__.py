"""repro.net — the network serving tier.

``repro.connect("tcp://host:port")`` gives a remote dashboard the same
:class:`~repro.client.Client` surface as the in-process backends, with
**bit-identical frames**; :func:`serve` (or :class:`AsapServer` under an
existing event loop) puts any hub — :class:`~repro.service.StreamHub` or a
:class:`~repro.cluster.ShardedHub` — behind a socket::

    hub = repro.StreamHub()
    handle = repro.serve(hub)               # daemon thread, ephemeral port

    client = repro.connect(handle.url)      # anywhere on the network
    stream = client.stream(pane_size=4)
    sub = client.subscribe(stream.stream_id)        # server-push frames
    ...
    for event in client.pushes(timeout=1.0):
        event.frames  # delivered at each refresh boundary

The wire protocol is the checkpoint codec's NPZ+JSON envelope behind an
8-byte length-prefixed header — pickle-free, schema-stamped (one
``SCHEMA_VERSION`` governs checkpoints *and* the protocol), bounded at
``MAX_MESSAGE_BYTES``.  See :mod:`repro.net.wire` for the message shapes,
:mod:`repro.net.server` for subscription/backpressure semantics, and the
README's "Remote serving" section for the protocol sketch.
"""

from .remote import PushEvent, RemoteBackend, parse_tcp_url
from .server import AsapServer, ServerHandle, serve

__all__ = [
    "AsapServer",
    "ServerHandle",
    "serve",
    "RemoteBackend",
    "PushEvent",
    "parse_tcp_url",
]
