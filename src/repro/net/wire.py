"""The network tier's message codec: result objects <-> wire trees <-> bytes.

Every message on an ASAP connection is one :mod:`repro.persist.codec`
envelope (the checkpoint NPZ+JSON format — no pickle is ever read or
written) behind the codec's 8-byte length-prefixed header
(:func:`repro.persist.codec.frame_message`).  Because the payload *is* a
codec envelope, the wire protocol's version is the checkpoint
:data:`~repro.persist.codec.SCHEMA_VERSION`: a client and server built
against different schemas fail the handshake with the codec's own
schema-mismatch message, re-raised as
:class:`~repro.errors.WireProtocolError`.

Message shapes (the ``state`` tree inside the envelope)::

    {"msg": "hello", "schema": int, "hub_kind": str, "server": str,
     "version": str, "max_message_bytes": int}
    {"msg": "request", "id": int, "op": str, "args": {...}}
    {"msg": "response", "id": int, "ok": true, "result": ...}
    {"msg": "response", "id": int, "ok": false, "error": {...}}
    {"msg": "push", "subscription": int, "stream_id": str, "seq": int,
     "push_dropped": int, "payload": {"type": "frames"|"view", ...}}
    {"msg": "error", "error": {...}}          # connection-level, then close

This module also owns the **result serializers** — :class:`Frame`,
``SessionSnapshot``/``ResolutionSnapshot``, ``BackfillResult``, and
``HubStats`` as plain scalar/array trees — and the **error mapping** that
carries :mod:`repro.errors` types across the wire by name, so a remote
``UnknownStreamError`` is an ``UnknownStreamError`` at the client too.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import errors
from ..core.search import SearchResult
from ..core.streaming import BackfillResult, Frame
from ..errors import NetError, WireProtocolError
from ..persist import codec
from ..persist.codec import MAX_MESSAGE_BYTES
from ..quality import FrameQuality
from ..service.hub import HubStats, ResolutionSnapshot, SessionSnapshot
from ..spec import AsapSpec
from ..timeseries.series import TimeSeries

__all__ = [
    "MESSAGE_KIND",
    "MAX_MESSAGE_BYTES",
    "encode_message",
    "decode_payload",
    "frame_state",
    "frame_from_state",
    "frames_state",
    "frames_from_state",
    "backfill_state",
    "backfill_from_state",
    "snapshot_state",
    "snapshot_from_state",
    "hub_stats_state",
    "hub_stats_from_state",
    "error_state",
    "error_from_state",
]

#: Envelope kind of every wire message (checkpoint payloads use their own
#: kinds, so a checkpoint file can never be replayed as a message or vice
#: versa).
MESSAGE_KIND = "asap-net"


def encode_message(state: dict, *, limit: int = MAX_MESSAGE_BYTES) -> bytes:
    """One ready-to-send wire message (header + envelope) for *state*."""
    return codec.frame_message(MESSAGE_KIND, state, limit=limit)


def decode_payload(payload: bytes) -> dict:
    """Decode one message payload (the bytes *after* the header).

    Wraps every codec failure — garbage bytes, a truncated NPZ, a schema
    mismatch — in :class:`~repro.errors.WireProtocolError`, preserving the
    codec's message (for a schema mismatch that message names both
    versions, which is exactly the handshake diagnostic).
    """
    try:
        kind, state = codec.loads(payload)
    except codec.CheckpointError as exc:
        raise WireProtocolError(f"undecodable wire message: {exc}") from exc
    if kind != MESSAGE_KIND:
        raise WireProtocolError(
            f"payload kind {kind!r} is not a wire message (expected {MESSAGE_KIND!r})"
        )
    if not isinstance(state, dict) or "msg" not in state:
        raise WireProtocolError("wire message has no 'msg' discriminator")
    return state


# -- result serializers ---------------------------------------------------------


def frame_state(frame: Frame) -> dict:
    """A :class:`Frame` as plain scalars/arrays (codec-serializable)."""
    return {
        "values": frame.series.values.copy(),
        "timestamps": frame.series.timestamps.copy(),
        "name": frame.series.name,
        "window": frame.window,
        "search": dataclasses.asdict(frame.search),
        "refresh_index": frame.refresh_index,
        "points_ingested": frame.points_ingested,
        "quality": dataclasses.asdict(frame.quality),
    }


def frame_from_state(state: dict) -> Frame:
    return Frame(
        series=TimeSeries(state["values"], state["timestamps"], name=str(state["name"])),
        window=int(state["window"]),
        search=SearchResult(**state["search"]),
        refresh_index=int(state["refresh_index"]),
        points_ingested=int(state["points_ingested"]),
        quality=FrameQuality(**state["quality"]),
    )


def frames_state(frames) -> list:
    return [frame_state(frame) for frame in frames]


def frames_from_state(states) -> list:
    return [frame_from_state(state) for state in states]


def backfill_state(result: BackfillResult) -> dict:
    return {
        "points": result.points,
        "panes": result.panes,
        "frames_elided": result.frames_elided,
        "searches_run": result.searches_run,
        "mode": result.mode,
        "frames": frames_state(result.frames),
    }


def backfill_from_state(state: dict) -> BackfillResult:
    return BackfillResult(
        points=int(state["points"]),
        panes=int(state["panes"]),
        frames_elided=int(state["frames_elided"]),
        searches_run=int(state["searches_run"]),
        mode=str(state["mode"]),
        frames=tuple(frames_from_state(state["frames"])),
    )


def _search_state(search: SearchResult | None):
    return None if search is None else dataclasses.asdict(search)


def _search_from_state(state) -> SearchResult | None:
    return None if state is None else SearchResult(**state)


def snapshot_state(snap) -> dict:
    """Either snapshot flavour as a tagged tree (``type`` discriminates)."""
    if isinstance(snap, SessionSnapshot):
        state = dataclasses.asdict(snap)
        state["config"] = snap.config.to_dict()
        return {"type": "session", **state}
    if isinstance(snap, ResolutionSnapshot):
        state = {
            field.name: getattr(snap, field.name)
            for field in dataclasses.fields(ResolutionSnapshot)
            if field.name not in ("series", "search")
        }
        state["values"] = snap.series.values.copy()
        state["timestamps"] = snap.series.timestamps.copy()
        state["name"] = snap.series.name
        state["search"] = _search_state(snap.search)
        return {"type": "resolution", **state}
    raise NetError(f"unserializable snapshot type {type(snap).__name__!r}")


def snapshot_from_state(state: dict):
    flavour = state.pop("type")
    if flavour == "session":
        state["config"] = AsapSpec.from_dict(state["config"])
        return SessionSnapshot(**state)
    if flavour == "resolution":
        series = TimeSeries(
            state.pop("values"), state.pop("timestamps"), name=str(state.pop("name"))
        )
        state["search"] = _search_from_state(state["search"])
        return ResolutionSnapshot(series=series, **state)
    raise WireProtocolError(f"unknown snapshot flavour {flavour!r}")


def hub_stats_state(stats: HubStats) -> dict:
    return dataclasses.asdict(stats)


def hub_stats_from_state(state: dict) -> HubStats:
    return HubStats(**state)


# -- error mapping --------------------------------------------------------------

#: Exception types that cross the wire by name; anything else arrives as the
#: base :class:`~repro.errors.NetError` carrying the original type in its
#: message (bugs should be loud, not misclassified).
_ERROR_TYPES = {
    name: getattr(errors, name)
    for name in errors.__all__
    if isinstance(getattr(errors, name), type)
}
_ERROR_TYPES.update({"ValueError": ValueError, "KeyError": KeyError, "TypeError": TypeError})


def error_state(exc: BaseException) -> dict:
    """One raised exception as a wire tree (type name + message)."""
    if isinstance(exc, errors.ShardDownError):
        return {
            "type": "ShardDownError",
            "message": str(exc),
            "shard_ids": list(exc.shard_ids),
        }
    message = str(exc.args[0]) if len(exc.args) == 1 else str(exc)
    return {"type": type(exc).__name__, "message": message}


def error_from_state(state: dict) -> BaseException:
    """Rebuild the named exception; unknown names become :class:`NetError`."""
    name = str(state.get("type", "NetError"))
    message = str(state.get("message", ""))
    if name == "ShardDownError":
        # partial_frames never cross the wire: the shards' ticks have run
        # server-side and their frames are the server's to deliver/stash.
        return errors.ShardDownError(state.get("shard_ids", ("unknown",)))
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        return NetError(f"remote {name}: {message}")
    return cls(message)


def arrays_state(timestamps, values) -> dict:
    """An arrivals batch as wire arrays (shared by ingest/backfill/history)."""
    return {
        "timestamps": np.asarray(timestamps, dtype=np.float64),
        "values": np.asarray(values, dtype=np.float64),
    }
