"""Streaming quality stages: watermarked reordering and stateful normalization.

Both stages sit *in front of* the :class:`~repro.stream.panes.PaneBuffer`
inside ``StreamingASAP.push_many``:

    arrivals -> ReorderBuffer (watermark) -> StreamNormalizer -> PaneBuffer

and both keep the dense-path guarantee: clean in-order input flows through
bit-identically (the fast paths return the caller's arrays untouched).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..errors import DataQualityError
from .normalize import DEFAULT_GAP_FACTOR, GAP_POLICIES, MAX_FILL_PER_GAP

__all__ = ["ReorderBuffer", "StreamNormalizer"]

#: Spacings sampled before an undeclared cadence is inferred (their median).
CADENCE_INFER_SAMPLES = 8


class ReorderBuffer:
    """Bounded reordering buffer with watermark semantics.

    Holds the ``watermark`` most recent arrivals in timestamp order; every
    arrival beyond that releases the smallest buffered point downstream.  A
    point arriving out of order but still inside the buffer is placed in its
    correct position (counted as *late_accepted*); a point older than the
    last released timestamp can no longer be placed without rewriting emitted
    state, so it is **counted and dropped** (*late_dropped*) — late data never
    corrupts rolling statistics.

    The invariant the equivalence tests pin: as long as every point arrives
    within ``watermark`` positions of its in-order position, the released
    sequence is the fully sorted stream — so downstream frames are
    bit-identical to in-order delivery.  Ties release in arrival order.
    """

    def __init__(self, watermark: int) -> None:
        if watermark < 1:
            raise ValueError(f"watermark must be >= 1, got {watermark}")
        self.watermark = watermark
        self._times: list[float] = []
        self._values: list[float] = []
        self._last_released = -np.inf
        self.late_accepted = 0
        self.late_dropped = 0

    def __len__(self) -> int:
        return len(self._times)

    def push_many(self, timestamps, values) -> tuple[np.ndarray, np.ndarray]:
        """Buffer a batch; return the ``(timestamps, values)`` it released."""
        ts = np.asarray(timestamps, dtype=np.float64)
        vs = np.asarray(values, dtype=np.float64)
        if ts.shape != vs.shape or ts.ndim != 1:
            raise ValueError(
                f"timestamps and values must be equal-length 1-D, got {ts.shape} and {vs.shape}"
            )
        n = ts.size
        if n == 0:
            return ts, vs
        # Fast path: the batch is in order and lands entirely after the
        # buffered points — the common dense case.  Everything pushed past
        # the watermark releases in one slice, arrays untouched.
        buffered = len(self._times)
        in_order = bool(np.all(np.diff(ts) >= 0.0)) if n > 1 else True
        if (
            in_order
            and ts[0] >= self._last_released
            and (buffered == 0 or ts[0] >= self._times[-1])
        ):
            release = buffered + n - self.watermark
            if release <= 0:
                self._times.extend(ts.tolist())
                self._values.extend(vs.tolist())
                return ts[:0], vs[:0]
            from_buffer = min(release, buffered)
            out_ts = np.concatenate((self._times[:from_buffer], ts[: release - from_buffer]))
            out_vs = np.concatenate((self._values[:from_buffer], vs[: release - from_buffer]))
            del self._times[:from_buffer], self._values[:from_buffer]
            self._times.extend(ts[release - from_buffer :].tolist())
            self._values.extend(vs[release - from_buffer :].tolist())
            self._last_released = float(out_ts[-1])
            return out_ts, out_vs
        # Mixed batch: move each maximal nondecreasing run that lands after
        # the buffer tail in one slice; only a genuinely late point (drop or
        # buffer insert) is handled alone.  A run point is always >= the new
        # tail its predecessor just became, so neither drops nor inserts can
        # occur mid-run and the bulk release equals the per-point interleave
        # (releases pop the front of a sorted buffer the run only appends to).
        out_ts: list[float] = []
        out_vs: list[float] = []
        ts_list = ts.tolist()
        vs_list = vs.tolist()
        run_breaks = (np.flatnonzero(np.diff(ts) < 0.0) + 1).tolist()
        run_breaks.append(n)
        b = 0
        i = 0
        while i < n:
            t = ts_list[i]
            if t < self._last_released:
                self.late_dropped += 1
                i += 1
                continue
            if self._times and t < self._times[-1]:
                self.late_accepted += 1
                at = bisect_right(self._times, t)
                self._times.insert(at, t)
                self._values.insert(at, vs_list[i])
                if len(self._times) > self.watermark:
                    released = self._times.pop(0)
                    out_vs.append(self._values.pop(0))
                    out_ts.append(released)
                    self._last_released = released
                i += 1
                continue
            while run_breaks[b] <= i:
                b += 1
            j = run_breaks[b]
            self._times.extend(ts_list[i:j])
            self._values.extend(vs_list[i:j])
            release = len(self._times) - self.watermark
            if release > 0:
                out_ts.extend(self._times[:release])
                out_vs.extend(self._values[:release])
                del self._times[:release], self._values[:release]
                self._last_released = out_ts[-1]
            i = j
        return (
            np.asarray(out_ts, dtype=np.float64),
            np.asarray(out_vs, dtype=np.float64),
        )

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Release every buffered point (oldest first) — the flush path."""
        out_ts = np.asarray(self._times, dtype=np.float64)
        out_vs = np.asarray(self._values, dtype=np.float64)
        self._times = []
        self._values = []
        if out_ts.size:
            self._last_released = float(out_ts[-1])
        return out_ts, out_vs

    def clear(self) -> None:
        self._times = []
        self._values = []
        self._last_released = -np.inf
        self.late_accepted = 0
        self.late_dropped = 0

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "watermark": self.watermark,
            "times": np.asarray(self._times, dtype=np.float64),
            "values": np.asarray(self._values, dtype=np.float64),
            "last_released": self._last_released,
            "late_accepted": self.late_accepted,
            "late_dropped": self.late_dropped,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ReorderBuffer":
        buffer = cls(watermark=int(state["watermark"]))
        buffer._times = np.asarray(state["times"], dtype=np.float64).tolist()
        buffer._values = np.asarray(state["values"], dtype=np.float64).tolist()
        buffer._last_released = float(state["last_released"])
        buffer.late_accepted = int(state["late_accepted"])
        buffer.late_dropped = int(state["late_dropped"])
        return buffer


class StreamNormalizer:
    """Stateful NaN filtering and gap filling applied batch by batch.

    The streaming counterpart of :func:`~repro.quality.normalize.
    normalize_series`: non-finite values are dropped and counted, spacings
    wider than ``gap_factor * cadence`` are gaps, and gaps are handled per
    ``gap_policy`` (``"interpolate"``/``"ffill"`` synthesize marked fill
    points on the cadence grid; ``"split"`` counts the discontinuity and
    continues; ``"reject"`` raises).  An undeclared cadence is inferred from
    the median of the first :data:`CADENCE_INFER_SAMPLES` spacings.

    The fast path — finite values at dense spacing — returns the caller's
    arrays untouched, preserving downstream bit-identity on clean input.
    """

    def __init__(
        self,
        cadence: float | None = None,
        gap_policy: str = "interpolate",
        gap_factor: float = DEFAULT_GAP_FACTOR,
    ) -> None:
        if gap_policy not in GAP_POLICIES:
            raise DataQualityError(
                f"gap_policy must be one of {', '.join(GAP_POLICIES)}; got {gap_policy!r}"
            )
        if cadence is not None and (cadence <= 0.0 or not np.isfinite(cadence)):
            raise DataQualityError(f"cadence must be a positive finite number, got {cadence!r}")
        self.cadence = None if cadence is None else float(cadence)
        self.declared_cadence = self.cadence
        self.gap_policy = gap_policy
        self.gap_factor = float(gap_factor)
        self._diff_samples: list[float] = []
        self._last_t: float | None = None
        self._last_v: float | None = None
        self.nan_dropped = 0
        self.gaps_filled = 0
        self.gaps_split = 0

    def _observe_cadence(self, ts: np.ndarray) -> None:
        """Accumulate spacing samples until the cadence can be inferred."""
        if self._last_t is None:
            diffs = np.diff(ts)
        else:
            diffs = np.diff(ts, prepend=self._last_t)
        self._diff_samples.extend(diffs[diffs > 0.0].tolist())
        if len(self._diff_samples) >= CADENCE_INFER_SAMPLES:
            self.cadence = float(np.median(self._diff_samples[:CADENCE_INFER_SAMPLES]))

    def process(self, timestamps, values) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Normalize one batch; returns ``(timestamps, values, synthetic)``.

        ``synthetic`` is ``None`` when nothing was filled (the fast path) and
        a bool mask over the returned arrays otherwise.
        """
        ts = np.asarray(timestamps, dtype=np.float64)
        vs = np.asarray(values, dtype=np.float64)
        if ts.shape != vs.shape or ts.ndim != 1:
            raise ValueError(
                f"timestamps and values must be equal-length 1-D, got {ts.shape} and {vs.shape}"
            )
        finite = np.isfinite(vs) & np.isfinite(ts)
        if not finite.all():
            self.nan_dropped += int(vs.size - np.count_nonzero(finite))
            ts = ts[finite]
            vs = vs[finite]
        if ts.size == 0:
            return ts, vs, None
        if self.cadence is None:
            self._observe_cadence(ts)
            if self.cadence is None:
                # Not enough spacings yet: pass through un-gap-checked (these
                # same points are the inference sample).
                self._last_t = float(ts[-1])
                self._last_v = float(vs[-1])
                return ts, vs, None
        threshold = self.gap_factor * self.cadence
        if self._last_t is None:
            gap_free = ts.size < 2 or bool(np.all(np.diff(ts) <= threshold))
        else:
            gap_free = bool(ts[0] - self._last_t <= threshold) and (
                ts.size < 2 or bool(np.all(np.diff(ts) <= threshold))
            )
        if gap_free:
            self._last_t = float(ts[-1])
            self._last_v = float(vs[-1])
            return ts, vs, None
        # Gapped batch: locate every over-threshold spacing, then copy the
        # clean spans between gaps wholesale; only the fills themselves (a
        # handful of points per gap) are built scalar-wise in _fill_gap.
        if self._last_t is None:
            prev_ts = np.concatenate(([ts[0]], ts[:-1]))
        else:
            prev_ts = np.concatenate(([self._last_t], ts[:-1]))
        gap_idx = np.flatnonzero(ts - prev_ts > threshold).tolist()
        parts_ts: list[np.ndarray] = []
        parts_vs: list[np.ndarray] = []
        parts_syn: list[np.ndarray] = []
        start = 0
        for g in gap_idx:
            if g > start:
                parts_ts.append(ts[start:g])
                parts_vs.append(vs[start:g])
                parts_syn.append(np.zeros(g - start, dtype=bool))
            if g > 0:
                self._last_t = float(ts[g - 1])
                self._last_v = float(vs[g - 1])
            fill_ts: list[float] = []
            fill_vs: list[float] = []
            fill_syn: list[bool] = []
            self._fill_gap(float(ts[g]), float(vs[g]), fill_ts, fill_vs, fill_syn)
            if fill_ts:
                parts_ts.append(np.asarray(fill_ts, dtype=np.float64))
                parts_vs.append(np.asarray(fill_vs, dtype=np.float64))
                parts_syn.append(np.asarray(fill_syn, dtype=bool))
            start = g
        parts_ts.append(ts[start:])
        parts_vs.append(vs[start:])
        parts_syn.append(np.zeros(ts.size - start, dtype=bool))
        self._last_t = float(ts[-1])
        self._last_v = float(vs[-1])
        return (
            np.concatenate(parts_ts),
            np.concatenate(parts_vs),
            np.concatenate(parts_syn),
        )

    def _fill_gap(self, t: float, v: float, out_ts, out_vs, out_syn) -> None:
        missing = int(round((t - self._last_t) / self.cadence)) - 1
        if self.gap_policy == "reject":
            raise DataQualityError(
                f"gap of {t - self._last_t!r} (≈{missing + 1} cadences of "
                f"{self.cadence!r}) after t={self._last_t!r} and gap_policy='reject'"
            )
        if self.gap_policy == "split" or missing > MAX_FILL_PER_GAP or missing < 1:
            # Oversized gaps degrade to a counted discontinuity even under a
            # filling policy — a sensor offline for a month is a split, not
            # 2.6 million synthetic points.
            self.gaps_split += 1
            return
        base_t = self._last_t
        base_v = self._last_v
        for k in range(1, missing + 1):
            out_ts.append(base_t + k * self.cadence)
            if self.gap_policy == "interpolate":
                out_vs.append(base_v + (v - base_v) * (k / (missing + 1)))
            else:  # ffill
                out_vs.append(base_v)
            out_syn.append(True)
        self.gaps_filled += missing

    def clear(self) -> None:
        self.cadence = self.declared_cadence
        self._diff_samples = []
        self._last_t = None
        self._last_v = None
        self.nan_dropped = 0
        self.gaps_filled = 0
        self.gaps_split = 0

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "declared_cadence": self.declared_cadence,
            "cadence": self.cadence,
            "gap_policy": self.gap_policy,
            "gap_factor": self.gap_factor,
            "diff_samples": np.asarray(self._diff_samples, dtype=np.float64),
            "last_t": self._last_t,
            "last_v": self._last_v,
            "nan_dropped": self.nan_dropped,
            "gaps_filled": self.gaps_filled,
            "gaps_split": self.gaps_split,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamNormalizer":
        normalizer = cls(
            cadence=state["declared_cadence"],
            gap_policy=str(state["gap_policy"]),
            gap_factor=float(state["gap_factor"]),
        )
        normalizer.cadence = None if state["cadence"] is None else float(state["cadence"])
        normalizer._diff_samples = np.asarray(state["diff_samples"], dtype=np.float64).tolist()
        normalizer._last_t = None if state["last_t"] is None else float(state["last_t"])
        normalizer._last_v = None if state["last_v"] is None else float(state["last_v"])
        normalizer.nan_dropped = int(state["nan_dropped"])
        normalizer.gaps_filled = int(state["gaps_filled"])
        normalizer.gaps_split = int(state["gaps_split"])
        return normalizer
