"""Batch normalization: NaN filtering, gap filling, and grid bucketing.

The batch half of :mod:`repro.quality`.  Everything here is pure-function
array work; the stateful streaming counterpart (:class:`~repro.quality.stream.
StreamNormalizer`) applies the same policies batch by batch.

Design rule — **dense input is a bit-identical no-op**: when the samples are
finite, ordered, and land exactly one cadence apart, :func:`normalize_series`
and :func:`regrid` return the caller's arrays untouched (no copy, no
re-rounding), so enabling normalization on clean data cannot perturb a single
bit downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataQualityError

__all__ = [
    "DEFAULT_GAP_FACTOR",
    "GAP_POLICIES",
    "FrameQuality",
    "NormalizedSeries",
    "infer_cadence",
    "normalize_series",
    "regrid",
]

#: Valid gap-fill policies (the :class:`~repro.spec.AsapSpec` ``gap_policy``
#: field validates against this tuple).
GAP_POLICIES = ("interpolate", "ffill", "split", "reject")

#: A spacing wider than this many cadences is a gap (1.5 tolerates jitter up
#: to half a cadence while catching every true missing slot).
DEFAULT_GAP_FACTOR = 1.5

#: Refuse to synthesize more than this many fill points per gap: a sensor
#: that was offline for a month should surface as a ``split``/``reject``
#: decision (or a declared coarser cadence), not a silent memory blowup.
MAX_FILL_PER_GAP = 100_000


@dataclass(frozen=True)
class FrameQuality:
    """Per-window data-quality report attached to every emitted frame.

    ``completeness`` is the fraction of the aggregated window built from
    *observed* points (1.0 means no synthetic fill in the window); the
    counters are stream-lifetime totals at the moment the frame was emitted.
    The default instance — all-clean — is what frames carry when the quality
    stage is disabled, so dense-path frames are unchanged.
    """

    completeness: float = 1.0
    synthetic_in_window: int = 0
    gaps_filled: int = 0
    nan_dropped: int = 0
    late_accepted: int = 0
    late_dropped: int = 0


@dataclass(frozen=True)
class NormalizedSeries:
    """:func:`normalize_series` output: regular arrays plus the quality ledger.

    ``synthetic`` marks fill points (False everywhere for observed samples);
    ``segments`` lists contiguous ``(start, stop)`` index runs — one segment
    for the filling policies, one per gap-free run under ``"split"``.
    """

    values: np.ndarray
    timestamps: np.ndarray
    synthetic: np.ndarray
    cadence: float
    completeness: float
    gaps_filled: int
    nan_dropped: int
    segments: tuple[tuple[int, int], ...]


def infer_cadence(timestamps) -> float:
    """The series' sampling interval: the median of its positive spacings.

    The median is robust to both gaps (a few oversized spacings) and
    duplicate timestamps (zero spacings are excluded); a series with no
    positive spacing has no inferable cadence and raises
    :class:`~repro.errors.DataQualityError`.
    """
    ts = np.asarray(timestamps, dtype=np.float64)
    if ts.ndim != 1:
        raise DataQualityError(f"timestamps must be 1-D, got shape {ts.shape}")
    diffs = np.diff(np.sort(ts))
    positive = diffs[diffs > 0.0]
    if positive.size == 0:
        raise DataQualityError("cannot infer a cadence: need at least two distinct timestamps")
    return float(np.median(positive))


def _require_policy(gap_policy: str) -> str:
    if gap_policy not in GAP_POLICIES:
        raise DataQualityError(
            f"gap_policy must be one of {', '.join(GAP_POLICIES)}; got {gap_policy!r}"
        )
    return gap_policy


def _segments_from_present(present: np.ndarray) -> tuple[tuple[int, int], ...]:
    """Contiguous index runs of a sorted slot array, as (start, stop) pairs."""
    if present.size == 0:
        return ()
    breaks = np.flatnonzero(np.diff(present) > 1) + 1
    starts = np.concatenate(([0], breaks))
    stops = np.concatenate((breaks, [present.size]))
    return tuple((int(a), int(b)) for a, b in zip(starts, stops))


def regrid(values, timestamps, cadence: float | None = None):
    """Time-weighted bucketing of irregular samples onto a regular grid.

    Each sample lands in the grid slot nearest its timestamp; samples sharing
    a slot are merged by a time-weighted mean (weight ``1 - |t - slot| /
    cadence``, so a sample dead-center counts double one half-a-cadence off).
    Returns ``(values, timestamps, present_slots)`` where ``timestamps`` are
    exact grid points and ``present_slots`` the occupied slot indices —
    missing slots are *not* filled (that is :func:`normalize_series`'s job).

    Exactly-regular input is returned untouched (same array objects), so the
    grid pass is a bit-identical no-op on clean data.
    """
    vs = np.asarray(values, dtype=np.float64)
    ts = np.asarray(timestamps, dtype=np.float64)
    if vs.shape != ts.shape or vs.ndim != 1:
        raise DataQualityError(
            f"values and timestamps must be equal-length 1-D, got {vs.shape} and {ts.shape}"
        )
    if vs.size == 0:
        return vs, ts, np.empty(0, dtype=np.int64)
    order = np.argsort(ts, kind="stable")
    if not np.array_equal(order, np.arange(ts.size)):
        ts = ts[order]
        vs = vs[order]
    step = float(cadence) if cadence is not None else infer_cadence(ts)
    if step <= 0.0 or not np.isfinite(step):
        raise DataQualityError(f"cadence must be a positive finite number, got {step!r}")
    slots = np.rint((ts - ts[0]) / step).astype(np.int64)
    if slots.size == 1 or np.all(np.diff(slots) >= 1):
        # Already one-per-slot in order: keep the caller's arrays (and their
        # exact timestamps) untouched — the no-op guarantee.
        return vs, ts, slots
    grid_ts = ts[0] + slots * step
    weights = 1.0 - np.abs(ts - grid_ts) / step
    present, inverse = np.unique(slots, return_inverse=True)
    weight_sums = np.zeros(present.size, dtype=np.float64)
    weighted = np.zeros(present.size, dtype=np.float64)
    np.add.at(weight_sums, inverse, weights)
    np.add.at(weighted, inverse, weights * vs)
    merged = weighted / weight_sums
    return merged, ts[0] + present * step, present


def normalize_series(
    values,
    timestamps=None,
    *,
    cadence: float | None = None,
    gap_policy: str = "interpolate",
) -> NormalizedSeries:
    """Normalize one messy series onto a regular grid, reporting what changed.

    Pipeline: drop non-finite values (counted as ``nan_dropped``), bucket
    irregular timestamps onto the cadence grid (:func:`regrid`), then handle
    missing slots per *gap_policy*:

    ``"interpolate"``
        Linear fill between the gap's endpoints (synthetic points marked).
    ``"ffill"``
        Repeat the last observed value across the gap.
    ``"split"``
        Leave gaps unfilled; ``segments`` names the gap-free runs.
    ``"reject"``
        Raise :class:`~repro.errors.DataQualityError` on the first gap.

    With *timestamps* ``None`` the sample index is the grid (cadence 1.0) and
    non-finite values are the holes — the Grafana-style dense-frame shape.
    Dense, finite, regular input comes back untouched: same array objects,
    ``completeness`` 1.0, no synthetic points.
    """
    _require_policy(gap_policy)
    vs = np.asarray(values, dtype=np.float64)
    if vs.ndim != 1:
        raise DataQualityError(f"values must be 1-D, got shape {vs.shape}")
    if timestamps is None:
        ts = np.arange(vs.size, dtype=np.float64)
        if cadence is None:
            cadence = 1.0
    else:
        ts = np.asarray(timestamps, dtype=np.float64)
    finite = np.isfinite(vs) & np.isfinite(ts)
    nan_dropped = int(vs.size - np.count_nonzero(finite))
    if nan_dropped:
        vs = vs[finite]
        ts = ts[finite]
    if vs.size < 2:
        synthetic = np.zeros(vs.size, dtype=bool)
        segments = ((0, vs.size),) if vs.size else ()
        return NormalizedSeries(
            values=vs,
            timestamps=ts,
            synthetic=synthetic,
            cadence=float(cadence) if cadence is not None else 1.0,
            completeness=1.0,
            gaps_filled=0,
            nan_dropped=nan_dropped,
            segments=segments,
        )
    step = float(cadence) if cadence is not None else infer_cadence(ts)
    vs, ts, present = regrid(vs, ts, step)
    present = present - present[0]
    total_slots = int(present[-1]) + 1
    missing = total_slots - present.size
    # After regrid a slot is either present or missing, so "gap" here is
    # exactly a missing slot (jitter within half a cadence already snapped).
    if missing == 0:
        return NormalizedSeries(
            values=vs,
            timestamps=ts,
            synthetic=np.zeros(vs.size, dtype=bool),
            cadence=step,
            completeness=1.0,
            gaps_filled=0,
            nan_dropped=nan_dropped,
            segments=((0, vs.size),),
        )
    if gap_policy == "reject":
        first_gap = int(present[np.flatnonzero(np.diff(present) > 1)[0]])
        raise DataQualityError(
            f"series has {missing} missing slot(s) at cadence {step!r} "
            f"(first gap after slot {first_gap}) and gap_policy='reject'"
        )
    if gap_policy == "split":
        return NormalizedSeries(
            values=vs,
            timestamps=ts,
            synthetic=np.zeros(vs.size, dtype=bool),
            cadence=step,
            completeness=present.size / total_slots,
            gaps_filled=0,
            nan_dropped=nan_dropped,
            segments=_segments_from_present(present),
        )
    widest = int(np.max(np.diff(present))) - 1
    if widest > MAX_FILL_PER_GAP:
        raise DataQualityError(
            f"a gap of {widest} slots exceeds MAX_FILL_PER_GAP ({MAX_FILL_PER_GAP}); "
            "declare a coarser cadence or use gap_policy='split'"
        )
    grid = np.arange(total_slots, dtype=np.int64)
    out_ts = ts[0] + grid * step
    out_ts[present] = ts  # observed slots keep their exact (snapped) stamps
    synthetic = np.ones(total_slots, dtype=bool)
    synthetic[present] = False
    if gap_policy == "interpolate":
        out_vs = np.interp(grid.astype(np.float64), present.astype(np.float64), vs)
        out_vs[present] = vs  # observed samples bit-exact, interp only fills
    else:  # ffill
        carry = np.cumsum(~synthetic) - 1
        out_vs = vs[carry]
    return NormalizedSeries(
        values=out_vs,
        timestamps=out_ts,
        synthetic=synthetic,
        cadence=step,
        completeness=present.size / total_slots,
        gaps_filled=missing,
        nan_dropped=nan_dropped,
        segments=((0, total_slots),),
    )
