"""repro.quality — gap/NaN normalization and late-data handling for messy streams.

ASAP's premise is smoothing *streaming telemetry* (Section 1), but the core
pipeline assumes dense, ordered, regular samples — real telemetry has NaN
holes, cadence gaps, irregular timestamps, and late/out-of-order arrivals.
This package is the one normalization stage every tier consumes through
:class:`~repro.spec.AsapSpec`:

* :func:`normalize_series` / :func:`regrid` / :func:`infer_cadence` — batch
  normalization: NaN filtering, gap detection against a declared or inferred
  cadence, configurable fill policies (:data:`GAP_POLICIES`), and
  time-weighted bucketing of irregular timestamps onto a regular grid;
* :class:`StreamNormalizer` — the stateful streaming counterpart, applied
  inside ``StreamingASAP.push_many`` batch by batch;
* :class:`ReorderBuffer` — a bounded reordering buffer with watermark
  semantics: late points within the watermark land in their correct position,
  points beyond it are counted-and-dropped, never corrupting rolling state;
* :class:`FrameQuality` — the per-window data-quality report attached to
  every emitted :class:`~repro.core.streaming.Frame`.

The equivalence bar (pinned by ``tests/quality`` and
``benchmarks/bench_messy.py``): on dense, ordered, regular input the whole
stage is a **bit-identical no-op** at every tier, and normalized-then-smoothed
frames are bit-identical whether points arrive in order or shuffled within
the watermark.
"""

from __future__ import annotations

from .normalize import (
    DEFAULT_GAP_FACTOR,
    GAP_POLICIES,
    FrameQuality,
    NormalizedSeries,
    infer_cadence,
    normalize_series,
    regrid,
)
from .stream import ReorderBuffer, StreamNormalizer

__all__ = [
    "DEFAULT_GAP_FACTOR",
    "GAP_POLICIES",
    "FrameQuality",
    "NormalizedSeries",
    "ReorderBuffer",
    "StreamNormalizer",
    "infer_cadence",
    "normalize_series",
    "regrid",
]
