"""StreamHub: many concurrent streaming-ASAP sessions behind one service.

A dashboard server does not smooth one stream — it holds a session per
charted metric per viewer and refreshes whichever of them crossed their
on-demand boundary, together.  :class:`StreamHub` is that serving layer:

* **Sessions by id** — ``create_stream`` / ``ingest`` / ``tick`` /
  ``snapshot`` / ``close``; each session wraps a
  :class:`~repro.core.streaming.StreamingASAP` configured by a
  :class:`StreamConfig` (incremental refresh on by default).
* **Deferred-boundary coalescing** — an ingest whose refresh boundary lands
  exactly at the end of the batch *defers* the refresh
  (:meth:`~repro.core.streaming.StreamingASAP.push_many` with
  ``defer_boundary=True``); :meth:`StreamHub.tick` then executes every due
  refresh in one pass.  Due sessions running a grid-shaped strategy over
  equal-length windows are stacked into a single batched kernel call
  (:func:`repro.engine.batch_engine.prefill_grid_caches`), so the tick pays
  for the candidate grid once per group instead of once per stream.
  Boundaries *inside* an ingest batch refresh inline, preserving exact
  point-by-point semantics.
* **Backpressure and eviction** — ``max_sessions`` bounds concurrent
  sessions (LRU eviction or rejection, by policy), ``max_panes_per_session``
  bounds each session's window memory, and ``idle_ticks_before_eviction``
  reaps sessions that stopped ingesting.  All evictions are counted in
  :class:`HubStats`.
* **Thread safety** — a registry lock plus per-session locks; concurrent
  ingestion into different streams proceeds without contention, and a
  refresh that races an ingest falls back to fresh state rather than using a
  stale pre-fill.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.batch import smooth
from ..core.search import SearchResult
from ..core.streaming import MIN_PANES_FOR_SEARCH, BackfillResult, Frame, StreamingASAP
from ..engine.batch_engine import GRID_STRATEGY_STEPS, prefill_grid_caches
from ..errors import HubAtCapacityError, HubError, UnknownStreamError
from ..pyramid import ViewSpec
from ..spec import AsapSpec
from ..timeseries.series import TimeSeries

__all__ = [
    "StreamConfig",
    "StreamHub",
    "HubStats",
    "SessionSnapshot",
    "ResolutionSnapshot",
    "HubError",
    "HubAtCapacityError",
    "UnknownStreamError",
]


def allocate_auto_id(prefix: str, counter: int, taken) -> tuple[str, int]:
    """First free ``f"{prefix}-{n}"`` id at or after *counter*.

    Returns ``(id, next counter)``.  The one id-allocation rule, shared by
    the hub's auto stream ids and the cluster tier's stream/shard ids, so a
    policy change (collision handling, numbering) lands everywhere at once.
    """
    candidate = f"{prefix}-{counter}"
    counter += 1
    while candidate in taken:
        candidate = f"{prefix}-{counter}"
        counter += 1
    return candidate, counter


#: Per-session configuration *is* the unified spec (:class:`repro.spec.AsapSpec`):
#: the historical ``StreamConfig`` fields are the spec's streaming + serving
#: knobs, with identical names and defaults (``incremental=True`` so a refresh
#: costs O(new panes) of bookkeeping, ``keep_pane_sketches=False`` to skip
#: per-pane state the serving path never reads, ``pyramid=True`` for
#: multi-resolution snapshots — none of which changes any emitted frame).
#: Operators are built from the spec (:meth:`~repro.spec.AsapSpec.build_operator`),
#: so the service tier has no hand-copied constructor to drift.
StreamConfig = AsapSpec


@dataclass(frozen=True)
class SessionSnapshot:
    """Read-only view of one session's state (no refresh is triggered).

    The trailing quality fields mirror the operator's data-quality counters
    (:mod:`repro.quality`); they stay at their all-clean defaults whenever
    the session's spec leaves ``normalize``/``watermark`` off.
    """

    stream_id: str
    panes: int
    points_ingested: int
    refresh_count: int
    last_window: int | None
    refresh_due: bool
    frames_emitted: int
    created_tick: int
    last_active_tick: int
    config: StreamConfig
    completeness: float = 1.0
    gaps_filled: int = 0
    nan_dropped: int = 0
    late_accepted: int = 0
    late_dropped: int = 0


@dataclass(frozen=True)
class ResolutionSnapshot:
    """One client's multi-resolution view of a session, freshly smoothed.

    ``series`` is the smoothed view (timestamps are view-bucket starts);
    ``window`` is the selected SMA window in view-bucket units, with the two
    mapped translations the dashboards need: ``window_base_units`` (panes,
    ``window * ratio``) and ``window_original_units`` (raw points,
    ``window * ratio * pane_size``).  ``base_start``/``base_end`` are global
    pane indices of the span the view covers; ``ratio``/``level_ratio``/
    ``residual`` describe how the pyramid resolved the request.  The values
    are equivalent to running the from-scratch pipeline on the directly
    pre-aggregated span (windows equal, values within 1e-9).
    """

    stream_id: str
    resolution: int
    series: TimeSeries
    window: int
    window_base_units: int
    window_original_units: int
    ratio: int
    level_ratio: int
    residual: int
    base_start: int
    base_end: int
    partial_points: int
    view_length: int
    #: None when the session's ``max_window`` (in pane units) was too small
    #: to admit any candidate at this ratio and the view is served unsmoothed.
    search: SearchResult | None


@dataclass(frozen=True)
class HubStats:
    """Aggregate accounting across the hub's lifetime.

    ``sessions_imported``/``sessions_exported`` count sessions that entered or
    left this hub as state snapshots (:meth:`StreamHub.import_session` /
    :meth:`StreamHub.export_session` with ``remove=True``) — the cluster
    tier's migration and restore traffic — separately from sessions created
    and closed through the ordinary lifecycle.

    ``warm_prefetches``/``warm_fallbacks`` sum the warm-started-search
    counters of the *currently active* sessions (see
    :attr:`repro.core.streaming.StreamingASAP.warm_prefetches`): how many
    refreshes were seeded by a stacked trace prefetch, and how many of those
    left the trace anyway.  A rising fallback share means the streams are
    drifting faster than the refresh cadence amortizes.

    ``gaps_filled``/``nan_dropped``/``late_accepted``/``late_dropped`` sum
    the data-quality counters of the currently active sessions (see
    :mod:`repro.quality`): synthetic fill points, filtered non-finite
    arrivals, and late data reordered or dropped at the watermark.  All zero
    when no session enables the quality stage.

    ``backfills``/``backfill_points``/``backfill_elided`` sum the archive
    replay counters of the currently active sessions (see
    :meth:`repro.core.streaming.StreamingASAP.backfill`): bulk-ingest calls,
    points they carried, and interior frames the fast lane elided.
    """

    sessions_active: int
    sessions_created: int
    sessions_closed: int
    sessions_evicted: int
    ticks: int
    points_ingested: int
    frames_emitted: int
    refreshes_coalesced: int
    grid_kernel_calls: int
    views_served: int
    view_cache_hits: int
    sessions_imported: int = 0
    sessions_exported: int = 0
    warm_prefetches: int = 0
    warm_fallbacks: int = 0
    gaps_filled: int = 0
    nan_dropped: int = 0
    late_accepted: int = 0
    late_dropped: int = 0
    backfills: int = 0
    backfill_points: int = 0
    backfill_elided: int = 0


@dataclass
class _Session:
    stream_id: str
    operator: StreamingASAP
    config: StreamConfig
    created_tick: int
    last_active_tick: int
    frames_emitted: int = 0
    closed: bool = False  # set under `lock`; guards ingest/close races
    lock: threading.RLock = field(default_factory=threading.RLock)
    # (resolution, include_partial) -> (panes_completed version, snapshot);
    # repeated polls between refreshes are served without recomputation.
    view_cache: dict[tuple[int, bool], tuple[int, "ResolutionSnapshot"]] = field(
        default_factory=dict
    )


class StreamHub:
    """A multi-tenant streaming-ASAP service; see the module docstring.

    Parameters
    ----------
    max_sessions:
        Concurrent session ceiling.  Creating a session beyond it either
        evicts the least-recently-active session (``eviction_policy="lru"``,
        the default) or raises :class:`HubAtCapacityError`
        (``eviction_policy="reject"``).
    max_panes_per_session:
        Upper bound on any session's window (``resolution``); configurations
        requesting more are rejected at ``create_stream`` time.  This bounds
        the hub's worst-case memory at roughly
        ``max_sessions * max_panes_per_session`` aggregated points.
    default_config:
        Session configuration used when ``create_stream`` gets no overrides.
    idle_ticks_before_eviction:
        When set, :meth:`tick` evicts sessions that have not ingested for
        more than this many ticks.
    """

    def __init__(
        self,
        max_sessions: int = 1024,
        max_panes_per_session: int = 4096,
        default_config: StreamConfig | None = None,
        eviction_policy: str = "lru",
        idle_ticks_before_eviction: int | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_panes_per_session < 1:
            raise ValueError(
                f"max_panes_per_session must be >= 1, got {max_panes_per_session}"
            )
        if eviction_policy not in ("lru", "reject"):
            raise ValueError(
                f"eviction_policy must be 'lru' or 'reject', got {eviction_policy!r}"
            )
        if idle_ticks_before_eviction is not None and idle_ticks_before_eviction < 1:
            raise ValueError(
                "idle_ticks_before_eviction must be >= 1 or None, "
                f"got {idle_ticks_before_eviction}"
            )
        self.max_sessions = max_sessions
        self.max_panes_per_session = max_panes_per_session
        self.default_config = default_config or StreamConfig()
        if default_config is not None:
            # An explicit default that no create_stream call could ever
            # satisfy is a configuration bug worth failing at once; the
            # built-in default is only checked per session, so a hub with a
            # small pane budget and per-stream resolutions keeps working.
            self._check_pane_budget(default_config)
        self.eviction_policy = eviction_policy
        self.idle_ticks_before_eviction = idle_ticks_before_eviction
        self._sessions: dict[str, _Session] = {}
        self._frame_observers: list = []
        self._lock = threading.RLock()
        self._next_auto_id = 0
        self._tick = 0
        self._sessions_created = 0
        self._sessions_closed = 0
        self._sessions_evicted = 0
        self._sessions_imported = 0
        self._sessions_exported = 0
        self._points_ingested = 0
        self._frames_emitted = 0
        self._refreshes_coalesced = 0
        self._grid_kernel_calls = 0
        self._views_served = 0
        self._view_cache_hits = 0

    def _check_pane_budget(self, config: StreamConfig) -> None:
        """Reject configurations whose window exceeds the per-session budget.

        A session retains up to ``resolution`` completed panes, so the pane
        budget is the hub's memory backstop; the error names both remedies.
        """
        if config.resolution > self.max_panes_per_session:
            raise HubError(
                f"stream resolution {config.resolution} exceeds the hub's "
                f"max_panes_per_session budget of {self.max_panes_per_session}; "
                f"raise the hub's max_panes_per_session or lower the stream's "
                f"resolution to at most {self.max_panes_per_session}"
            )

    # -- refresh-boundary observers --------------------------------------------

    def add_frame_observer(self, callback) -> None:
        """Register *callback* to see every frame this hub emits.

        The callback receives ``{stream_id: [Frame, ...]}`` after each
        emitting operation — inline ingest boundaries, coalesced
        :meth:`tick` refreshes, a backfill's closing frames, and a flushing
        :meth:`close` — outside all hub locks, on the thread that drove the
        operation.  This is the network tier's push hook
        (:class:`repro.net.AsapServer` subscriptions); observers must not
        raise — an exception propagates to whichever caller triggered the
        emission, after the hub state is already consistent.
        """
        with self._lock:
            if callback not in self._frame_observers:
                self._frame_observers.append(callback)

    def remove_frame_observer(self, callback) -> None:
        """Unregister a :meth:`add_frame_observer` callback (idempotent)."""
        with self._lock:
            if callback in self._frame_observers:
                self._frame_observers.remove(callback)

    def _notify_frames(self, frames: dict[str, list[Frame]]) -> None:
        """Fan emitted frames out to observers (no locks held; see above)."""
        if not frames:
            return
        with self._lock:
            observers = list(self._frame_observers)
        for callback in observers:
            callback(frames)

    # -- session lifecycle -----------------------------------------------------

    def create_stream(
        self,
        stream_id: str | None = None,
        config: StreamConfig | None = None,
        history: tuple | None = None,
        **overrides,
    ) -> str:
        """Register a new streaming session and return its id.

        *overrides* patch individual :class:`StreamConfig` fields on top of
        *config* (or the hub default), e.g. ``create_stream(pane_size=4)``.

        *history* is an optional ``(timestamps, values)`` archive folded into
        the fresh session through the bulk backfill lane
        (:meth:`StreamHub.backfill`) before the id is returned: the session
        starts exactly where it would have been had the archive been streamed
        point by point, without paying per-frame cost for the interior.
        """
        cfg = config or self.default_config
        if overrides:
            cfg = cfg.merge(**overrides)
        self._check_pane_budget(cfg)
        with self._lock:
            stream_id = self._claim_stream_id(stream_id)
            self._admit_locked()
            self._sessions[stream_id] = _Session(
                stream_id=stream_id,
                operator=cfg.build_operator(),
                config=cfg,
                created_tick=self._tick,
                last_active_tick=self._tick,
            )
            self._sessions_created += 1
        if history is not None:
            timestamps, values = history
            self.backfill(stream_id, timestamps, values)
        return stream_id

    def backfill(self, stream_id: str, timestamps, values) -> BackfillResult:
        """Replay an archive into one stream at batch speed; see
        :meth:`repro.core.streaming.StreamingASAP.backfill`.

        Interior refresh boundaries are accounted but (when the session's
        configuration is fast-lane eligible) not materialized; every frame
        the session emits afterwards is bit-identical to having streamed the
        archive point by point.  The closing frame, if any, is counted in
        the hub's ``frames_emitted`` and returned on the result.
        """
        session = self._get(stream_id)
        with session.lock:
            if session.closed:
                raise UnknownStreamError(stream_id)
            result = session.operator.backfill(timestamps, values)
            session.last_active_tick = self._tick
            session.frames_emitted += len(result.frames)
        # Counted after session.lock is released; see _resolution_snapshot
        # for the lock-order rationale.
        with self._lock:
            self._points_ingested += result.points
            self._frames_emitted += len(result.frames)
        if result.frames:
            self._notify_frames({stream_id: list(result.frames)})
        return result

    def _claim_stream_id(self, stream_id: str | None) -> str:
        """Allocate an auto id, or validate a caller-chosen one (under lock)."""
        if stream_id is None:
            stream_id, self._next_auto_id = allocate_auto_id(
                "stream", self._next_auto_id, self._sessions
            )
        elif stream_id in self._sessions:
            raise HubError(f"stream id {stream_id!r} already exists")
        return stream_id

    def _admit_locked(self) -> None:
        """Make room for one more session, per eviction policy (under lock)."""
        if len(self._sessions) < self.max_sessions:
            return
        if self.eviction_policy == "reject":
            raise HubAtCapacityError(f"hub is at max_sessions={self.max_sessions}")
        victim = min(
            self._sessions.values(),
            key=lambda s: (s.last_active_tick, s.created_tick),
        )
        with victim.lock:
            victim.closed = True  # in-flight ingests must fail, as on close()
        del self._sessions[victim.stream_id]
        self._sessions_evicted += 1

    def close(self, stream_id: str, flush: bool = True) -> list[Frame]:
        """Remove a session; with *flush*, emit its final pending frame(s)."""
        with self._lock:
            session = self._sessions.pop(stream_id, None)
            if session is None:
                raise UnknownStreamError(stream_id)
            self._sessions_closed += 1
        frames: list[Frame] = []
        with session.lock:
            session.closed = True
            if flush:
                frames = list(session.operator.flush())
        with self._lock:
            self._frames_emitted += len(frames)
        if frames:
            self._notify_frames({stream_id: frames})
        return frames

    def _get(self, stream_id: str) -> _Session:
        with self._lock:
            session = self._sessions.get(stream_id)
        if session is None:
            raise UnknownStreamError(stream_id)
        return session

    # -- ingestion -------------------------------------------------------------

    def ingest(self, stream_id: str, timestamps, values) -> list[Frame]:
        """Fold a batch of arrivals into one stream; return inline frames.

        Refresh boundaries inside the batch refresh immediately (exact
        point-by-point semantics); a boundary at the end of the batch is
        deferred to the next :meth:`tick`, where it is coalesced with every
        other due stream.
        """
        session = self._get(stream_id)
        vs = np.asarray(values, dtype=np.float64)
        with session.lock:
            # Re-check under the session lock: a close() may have raced in
            # between the registry lookup and here.
            if session.closed:
                raise UnknownStreamError(stream_id)
            frames = session.operator.push_many(timestamps, vs, defer_boundary=True)
            session.last_active_tick = self._tick
            session.frames_emitted += len(frames)
        with self._lock:
            self._points_ingested += int(vs.size)
            self._frames_emitted += len(frames)
        if frames:
            self._notify_frames({stream_id: frames})
        return frames

    def ingest_point(self, stream_id: str, timestamp: float, value: float) -> list[Frame]:
        """Fold one arrival; single-point convenience wrapper over ingest."""
        return self.ingest(stream_id, [timestamp], [value])

    # -- coalesced refresh -----------------------------------------------------

    def tick(self) -> dict[str, list[Frame]]:
        """Execute every deferred refresh; return emitted frames by stream id.

        Due sessions running a grid-shaped strategy (exhaustive/grid2/grid10)
        over equal-length windows are grouped, and each group's entire
        candidate grid is evaluated by one batched kernel call; the remaining
        due sessions (ASAP/binary, or singleton groups) refresh individually
        on their incremental state.  Also advances the hub clock and reaps
        idle sessions when ``idle_ticks_before_eviction`` is set.
        """
        with self._lock:
            self._tick += 1
            sessions = list(self._sessions.values())

        due: list[_Session] = []
        for session in sessions:
            with session.lock:
                if not session.closed and session.operator.refresh_due:
                    due.append(session)

        groups: dict[tuple, list[tuple[_Session, np.ndarray]]] = {}
        singles: list[_Session] = []
        for session in due:
            operator = session.operator
            with session.lock:
                panes = operator.pane_count
                if (
                    operator.strategy in GRID_STRATEGY_STEPS
                    and panes >= MIN_PANES_FOR_SEARCH
                ):
                    key = (operator.strategy, panes, operator.max_window)
                    groups.setdefault(key, []).append(
                        (session, operator.aggregated_values())
                    )
                else:
                    singles.append(session)

        emitted: dict[str, list[Frame]] = {}

        def record(session: _Session, frame: Frame | None) -> None:
            if frame is None:
                return
            emitted.setdefault(session.stream_id, []).append(frame)
            session.frames_emitted += 1

        coalesced = 0
        kernel_calls = 0
        for (strategy, _panes, max_window), members in groups.items():
            if len(members) < 2:
                singles.extend(session for session, _values in members)
                continue
            rows = np.vstack([values for _session, values in members])
            caches = prefill_grid_caches(rows, strategy, max_window=max_window)
            kernel_calls += 1
            coalesced += len(members)
            for (session, _values), cache in zip(members, caches):
                with session.lock:
                    if not session.closed:
                        record(session, session.operator.refresh_if_due(cache=cache))
        for session in singles:
            with session.lock:
                if not session.closed:
                    record(session, session.operator.refresh_if_due())

        evicted = 0
        if self.idle_ticks_before_eviction is not None:
            with self._lock:
                stale = [
                    session
                    for session in self._sessions.values()
                    if self._tick - session.last_active_tick
                    > self.idle_ticks_before_eviction
                ]
                for session in stale:
                    with session.lock:
                        session.closed = True  # as on close(): fail racing ingests
                    del self._sessions[session.stream_id]
                evicted = len(stale)

        with self._lock:
            self._refreshes_coalesced += coalesced
            self._grid_kernel_calls += kernel_calls
            self._sessions_evicted += evicted
            self._frames_emitted += sum(len(frames) for frames in emitted.values())
        self._notify_frames(emitted)
        return emitted

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, stream_id: str) -> bool:
        with self._lock:
            return stream_id in self._sessions

    def stream_ids(self) -> list[str]:
        """Ids of every active session (insertion order)."""
        with self._lock:
            return list(self._sessions)

    def snapshot(
        self,
        stream_id: str,
        resolution: int | None = None,
        include_partial: bool = False,
    ) -> SessionSnapshot | ResolutionSnapshot:
        """Point-in-time view of one session; never triggers a refresh.

        Without *resolution*: the session's bookkeeping
        (:class:`SessionSnapshot`), exactly as before.

        With *resolution*: a **multi-resolution view** — the session's
        current window re-served at that pixel width from the session's
        shared rollup pyramid (:class:`ResolutionSnapshot`).  Any number of
        clients can snapshot the same stream at different widths from the
        one session; each view's search input comes from the pyramid level
        nearest the width's point-to-pixel ratio (plus a residual
        re-bucket), and the smoothed output is equivalent to running the
        from-scratch pipeline on the directly pre-aggregated window (windows
        equal, values within 1e-9).  Views are cached per (resolution,
        include_partial) until the next pane completes, so repeated polls
        between refreshes are free.  Requires
        ``StreamConfig(pyramid=True)`` (the default).
        """
        session = self._get(stream_id)
        if resolution is not None:
            return self._resolution_snapshot(session, resolution, include_partial)
        if include_partial:
            raise HubError(
                "include_partial only applies to multi-resolution views; "
                "pass resolution=... as well"
            )
        with session.lock:
            if session.closed:
                raise UnknownStreamError(stream_id)
            operator = session.operator
            return SessionSnapshot(
                stream_id=session.stream_id,
                panes=operator.pane_count,
                points_ingested=operator.points_ingested,
                refresh_count=operator.refresh_count,
                last_window=operator.last_window,
                refresh_due=operator.refresh_due,
                frames_emitted=session.frames_emitted,
                created_tick=session.created_tick,
                last_active_tick=session.last_active_tick,
                config=session.config,
                completeness=operator.window_completeness,
                gaps_filled=operator.gaps_filled,
                nan_dropped=operator.nan_dropped,
                late_accepted=operator.late_accepted,
                late_dropped=operator.late_dropped,
            )

    def _resolution_snapshot(
        self, session: _Session, resolution: int, include_partial: bool
    ) -> ResolutionSnapshot:
        """Serve one multi-resolution view from the session's pyramid."""
        if resolution < 1:
            raise HubError(f"resolution must be >= 1, got {resolution}")
        with session.lock:
            if session.closed:
                raise UnknownStreamError(session.stream_id)
            operator = session.operator
            if operator.pyramid is None:
                raise HubError(
                    f"stream {session.stream_id!r} was created with "
                    f"StreamConfig(pyramid=False); re-create it with "
                    f"pyramid=True to serve multi-resolution snapshots"
                )
            key = (int(resolution), bool(include_partial))
            version = operator.panes_completed
            cached = session.view_cache.get(key)
            cache_hit = cached is not None and cached[0] == version
            if cache_hit:
                snap = cached[1]
            else:
                view = operator.pyramid_view(
                    ViewSpec(resolution=resolution, include_partial=include_partial)
                )
                if view.values.size < MIN_PANES_FOR_SEARCH:
                    raise HubError(
                        f"stream {session.stream_id!r} has only {view.values.size} "
                        f"view buckets at resolution {resolution}; a search needs "
                        f">= {MIN_PANES_FOR_SEARCH} — ingest more data or request "
                        f"a wider (higher-resolution) view"
                    )
                name = f"{session.stream_id}@{resolution}px"
                series = TimeSeries(view.values, view.timestamps, name=name)
                # The session's max_window bounds the smoothing window in
                # *pane* units; a view bucket spans `ratio` panes, so the
                # bound translates by floor division.  A bound too small to
                # admit any candidate serves the view unsmoothed (window 1).
                max_window = session.config.max_window
                view_bound = None if max_window is None else max_window // view.ratio
                if view_bound is not None and view_bound < 2:
                    result = None
                    window = 1
                else:
                    result = smooth(
                        series,
                        strategy=session.config.strategy,
                        max_window=view_bound,
                        use_preaggregation=False,
                    )
                    window = result.window
                snap = ResolutionSnapshot(
                    stream_id=session.stream_id,
                    resolution=resolution,
                    series=series if result is None else result.series,
                    window=window,
                    window_base_units=view.window_in_original_units(window),
                    window_original_units=(
                        view.window_in_original_units(window)
                        * session.config.pane_size
                    ),
                    ratio=view.ratio,
                    level_ratio=view.level_ratio,
                    residual=view.residual,
                    base_start=view.base_start,
                    base_end=view.base_end,
                    partial_points=view.partial_points,
                    view_length=view.values.size,
                    search=None if result is None else result.search,
                )
                self._cache_view(session, key, version, snap)
        # Stats are counted only after session.lock is released: taking the
        # registry lock while holding a session lock would invert the
        # hub-lock -> session-lock order used by create_stream's eviction and
        # tick's idle reaper (an ABBA deadlock).
        with self._lock:
            self._views_served += 1
            if cache_hit:
                self._view_cache_hits += 1
        return snap

    #: Distinct (resolution, include_partial) views cached per session; the
    #: cache is version-keyed, so this bounds only same-version variety (e.g.
    #: clients sweeping arbitrary widths), not staleness — stale-version
    #: entries are purged on every insert.
    MAX_CACHED_VIEWS_PER_SESSION = 32

    def _cache_view(
        self, session: _Session, key, version: int, snap: ResolutionSnapshot
    ) -> None:
        """Insert under session.lock; drop stale versions, bound the size."""
        cache = session.view_cache
        stale = [k for k, (v, _snap) in cache.items() if v != version]
        for k in stale:
            del cache[k]
        while len(cache) >= self.MAX_CACHED_VIEWS_PER_SESSION:
            cache.pop(next(iter(cache)))
        cache[key] = (version, snap)

    # -- durability (see repro.persist) ----------------------------------------

    #: Payload kind written by :func:`repro.persist.checkpoint`.
    checkpoint_kind = "streamhub"

    def export_session(self, stream_id: str, remove: bool = False) -> dict:
        """One session's full state as a plain dict (the persist-layer schema).

        The returned tree — config, bookkeeping, and the operator's
        :meth:`~repro.core.streaming.StreamingASAP.state_dict` — is exactly
        what :meth:`import_session` needs to resume the session with
        bit-identical subsequent frames; per-session view caches are not
        included (they rebuild lazily).  With ``remove=True`` the session is
        atomically taken out of this hub (no flush — every pending pane and
        partial pane travels with the state), which is the cluster tier's
        migration primitive.
        """
        if remove:
            with self._lock:
                session = self._sessions.pop(stream_id, None)
                if session is None:
                    raise UnknownStreamError(stream_id)
                self._sessions_exported += 1
            with session.lock:
                session.closed = True  # as on close(): fail racing ingests
                return self._session_state(session)
        session = self._get(stream_id)
        with session.lock:
            if session.closed:
                raise UnknownStreamError(stream_id)
            return self._session_state(session)

    @staticmethod
    def _session_state(session: _Session) -> dict:
        """Serialize one session under its lock (caller holds it)."""
        return {
            "stream_id": session.stream_id,
            "config": session.config.to_dict(),
            "created_tick": session.created_tick,
            "last_active_tick": session.last_active_tick,
            "frames_emitted": session.frames_emitted,
            "operator": session.operator.state_dict(),
        }

    def import_session(self, state: dict, stream_id: str | None = None) -> str:
        """Adopt a session exported by :meth:`export_session`; returns its id.

        The session resumes exactly where the export left it — refresh
        countdown, previous window, open partial pane, incremental sums, and
        pyramid included — so frames it emits here are bit-identical to the
        ones it would have emitted on the exporting hub.  *stream_id*
        overrides the exported id; the hub's pane budget and capacity policy
        apply as on :meth:`create_stream`.
        """
        cfg = StreamConfig.from_dict(state["config"])
        self._check_pane_budget(cfg)
        operator = StreamingASAP.from_state(state["operator"])
        with self._lock:
            sid = stream_id if stream_id is not None else str(state["stream_id"])
            if sid in self._sessions:
                raise HubError(f"stream id {sid!r} already exists")
            self._admit_locked()
            self._sessions[sid] = _Session(
                stream_id=sid,
                operator=operator,
                config=cfg,
                created_tick=int(state["created_tick"]),
                last_active_tick=int(state["last_active_tick"]),
                frames_emitted=int(state["frames_emitted"]),
            )
            self._sessions_imported += 1
        return sid

    def state_dict(self) -> dict:
        """The whole hub — parameters, counters, and every session's state.

        The registry lock is held for the whole serialization (counters and
        sessions captured together), so a checkpoint taken while other
        threads ingest is a *consistent* point in time — concurrent
        mutations land entirely before or entirely after it.  Taking session
        locks while holding the registry lock follows the same order as
        ``create_stream``'s eviction, so this cannot deadlock against the
        ingest/snapshot paths (which never hold a session lock while
        acquiring the registry lock).
        """
        with self._lock:
            state = {
                "max_sessions": self.max_sessions,
                "max_panes_per_session": self.max_panes_per_session,
                "default_config": self.default_config.to_dict(),
                "eviction_policy": self.eviction_policy,
                "idle_ticks_before_eviction": self.idle_ticks_before_eviction,
                "tick": self._tick,
                "next_auto_id": self._next_auto_id,
                "counters": {
                    "sessions_created": self._sessions_created,
                    "sessions_closed": self._sessions_closed,
                    "sessions_evicted": self._sessions_evicted,
                    "sessions_imported": self._sessions_imported,
                    "sessions_exported": self._sessions_exported,
                    "points_ingested": self._points_ingested,
                    "frames_emitted": self._frames_emitted,
                    "refreshes_coalesced": self._refreshes_coalesced,
                    "grid_kernel_calls": self._grid_kernel_calls,
                    "views_served": self._views_served,
                    "view_cache_hits": self._view_cache_hits,
                },
            }
            sessions = []
            for session in self._sessions.values():
                with session.lock:
                    if not session.closed:
                        sessions.append(self._session_state(session))
            state["sessions"] = sessions
        return state

    @classmethod
    def from_state(cls, state: dict) -> "StreamHub":
        """Rebuild a hub from :meth:`state_dict` output (exact resume)."""
        hub = cls(
            max_sessions=int(state["max_sessions"]),
            max_panes_per_session=int(state["max_panes_per_session"]),
            default_config=StreamConfig.from_dict(state["default_config"]),
            eviction_policy=str(state["eviction_policy"]),
            idle_ticks_before_eviction=(
                None
                if state["idle_ticks_before_eviction"] is None
                else int(state["idle_ticks_before_eviction"])
            ),
        )
        hub._tick = int(state["tick"])
        hub._next_auto_id = int(state["next_auto_id"])
        counters = state["counters"]
        hub._sessions_created = int(counters["sessions_created"])
        hub._sessions_closed = int(counters["sessions_closed"])
        hub._sessions_evicted = int(counters["sessions_evicted"])
        hub._sessions_imported = int(counters["sessions_imported"])
        hub._sessions_exported = int(counters["sessions_exported"])
        hub._points_ingested = int(counters["points_ingested"])
        hub._frames_emitted = int(counters["frames_emitted"])
        hub._refreshes_coalesced = int(counters["refreshes_coalesced"])
        hub._grid_kernel_calls = int(counters["grid_kernel_calls"])
        hub._views_served = int(counters["views_served"])
        hub._view_cache_hits = int(counters["view_cache_hits"])
        for session_state in state["sessions"]:
            cfg = StreamConfig.from_dict(session_state["config"])
            hub._check_pane_budget(cfg)
            hub._sessions[str(session_state["stream_id"])] = _Session(
                stream_id=str(session_state["stream_id"]),
                operator=StreamingASAP.from_state(session_state["operator"]),
                config=cfg,
                created_tick=int(session_state["created_tick"]),
                last_active_tick=int(session_state["last_active_tick"]),
                frames_emitted=int(session_state["frames_emitted"]),
            )
        return hub

    @property
    def stats(self) -> HubStats:
        """Aggregate hub accounting (sessions, points, frames, coalescing)."""
        with self._lock:
            return HubStats(
                sessions_active=len(self._sessions),
                sessions_created=self._sessions_created,
                sessions_closed=self._sessions_closed,
                sessions_evicted=self._sessions_evicted,
                ticks=self._tick,
                points_ingested=self._points_ingested,
                frames_emitted=self._frames_emitted,
                refreshes_coalesced=self._refreshes_coalesced,
                grid_kernel_calls=self._grid_kernel_calls,
                views_served=self._views_served,
                view_cache_hits=self._view_cache_hits,
                sessions_imported=self._sessions_imported,
                sessions_exported=self._sessions_exported,
                warm_prefetches=sum(
                    s.operator.warm_prefetches for s in self._sessions.values()
                ),
                warm_fallbacks=sum(
                    s.operator.warm_fallbacks for s in self._sessions.values()
                ),
                gaps_filled=sum(
                    s.operator.gaps_filled for s in self._sessions.values()
                ),
                nan_dropped=sum(
                    s.operator.nan_dropped for s in self._sessions.values()
                ),
                late_accepted=sum(
                    s.operator.late_accepted for s in self._sessions.values()
                ),
                late_dropped=sum(
                    s.operator.late_dropped for s in self._sessions.values()
                ),
                backfills=sum(
                    s.operator.backfills for s in self._sessions.values()
                ),
                backfill_points=sum(
                    s.operator.backfill_points for s in self._sessions.values()
                ),
                backfill_elided=sum(
                    s.operator.backfill_elided for s in self._sessions.values()
                ),
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"StreamHub(sessions={len(self._sessions)}/{self.max_sessions}, "
                f"ticks={self._tick}, policy={self.eviction_policy!r})"
            )
