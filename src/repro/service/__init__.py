"""repro.service — the multi-tenant streaming serving layer (StreamHub).

The production setting the ROADMAP targets — live dashboards for many users —
multiplexes *many* concurrent streams over one process.  This package manages
that workload on top of the single-stream operator of
:mod:`repro.core.streaming`:

* :class:`StreamHub` — create/ingest/tick/snapshot/close streaming sessions
  by stream id, with thread-safe ingestion, bounded session and pane budgets,
  and LRU/idle eviction; sessions are configured by ``StreamConfig``, which
  *is* the unified :class:`~repro.spec.AsapSpec` (one class, one validation,
  one wire format across every tier);
* coalesced refreshes — refresh boundaries landing on the same tick are
  executed together, and grid-strategy sessions over equal-length windows
  share a single batched kernel call
  (:func:`repro.engine.batch_engine.prefill_grid_caches`);
* incremental refreshes — hub sessions default to the streaming operator's
  ``incremental=True`` path, so a refresh costs O(new panes) of statistics
  maintenance rather than O(window log window) recomputation, with the same
  1e-9 agreement discipline (and its ``verify_incremental`` escape hatch)
  as the rest of the repo;
* multi-resolution serving — each session carries one shared rollup pyramid
  (:mod:`repro.pyramid`), so ``snapshot(stream_id, resolution=...)`` serves
  any number of per-client pixel widths from one session instead of N
  duplicate sessions, with results equivalent to the from-scratch pipeline
  on the directly pre-aggregated window.
"""

from .hub import (
    HubAtCapacityError,
    HubError,
    HubStats,
    ResolutionSnapshot,
    SessionSnapshot,
    StreamConfig,
    StreamHub,
    UnknownStreamError,
)

__all__ = [
    "HubAtCapacityError",
    "HubError",
    "HubStats",
    "ResolutionSnapshot",
    "SessionSnapshot",
    "StreamConfig",
    "StreamHub",
    "UnknownStreamError",
]
