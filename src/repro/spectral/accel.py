"""Optional compiled moment kernels (the ``"numba"`` kernel backend).

The numpy grid kernels in :mod:`repro.spectral.convolution` are memory-bound:
they materialize padded ``(windows, n)`` SMA buffers and stream several
same-sized temporaries through every reduction.  The kernels here compute the
identical statistics with fused loops over one prefix-sum array — no
materialized smoothed buffer at all — which a compiler turns into
cache-resident arithmetic.  They are selected through the existing
``AsapSpec.kernel`` knob (``kernel="numba"``) and the ``ASAP_KERNEL``
environment variable.

**Dependency gating.**  numba is optional and never a hard import: when it is
missing, :data:`HAVE_NUMBA` is ``False`` and consumers
(:class:`repro.core.smoothing.EvaluationCache`) silently fall back to the
numpy ``"grid"`` backend.  The ``@njit`` decorator degrades to a no-op, so
the kernel *algorithms* below remain plain Python functions — the equivalence
tests exercise them (at small sizes) with or without numba installed, and CI's
numba leg runs the same tests compiled.

**Numerics.**  The prefix sums are accumulated sequentially, matching
``np.cumsum``, so the smoothed values agree with the numpy kernels to the
last bit; the moment reductions accumulate sequentially where numpy uses
pairwise summation, so roughness/kurtosis agree to ~1e-12 relative — well
inside the repo's 1e-9 discipline but *not* bitwise.  Window selection is
therefore verified empirically against the numpy path (same windows, frames
bit-identical) by ``benchmarks/bench_kernels.py`` and the kernel-equivalence
tests before any timing.
"""

from __future__ import annotations

import math

import numpy as np

from .convolution import _as_batch, _validate_window, _validated_window_grid

__all__ = [
    "HAVE_NUMBA",
    "sma_window_moments_numba",
    "sma_grid_moments_numba",
    "cross_product_sums_numba",
]

try:
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on machines without numba
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """No-op decorator stand-in: keeps the kernels importable and testable
        as plain Python when numba is absent."""

        def wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap


@njit(cache=True)
def _window_moments_from_prefix(prefix, raw, window, n):  # pragma: no cover - jitted
    """Roughness and kurtosis of ``SMA(x, window)`` from the prefix sums.

    Two passes of O(1)-per-position arithmetic: the smoothed value at *i* is
    ``(prefix[i + window] - prefix[i]) / window`` (bit-identical to the numpy
    kernels' fill), recomputed on the fly in each pass instead of being
    materialized.  ``raw`` backs the window-1 identity bypass.
    """
    span = n - window + 1
    count = float(span)
    inv = 1.0 / float(window)

    total = 0.0
    diff_total = 0.0
    prev = 0.0
    for i in range(span):
        if window == 1:
            value = raw[i]
        else:
            value = (prefix[i + window] - prefix[i]) * inv
        total += value
        if i > 0:
            diff_total += value - prev
        prev = value
    mean = total / count
    diff_count = count - 1.0
    if diff_count < 1.0:
        diff_count = 1.0
    diff_mean = diff_total / diff_count

    second = 0.0
    fourth = 0.0
    diff_var = 0.0
    prev = 0.0
    for i in range(span):
        if window == 1:
            value = raw[i]
        else:
            value = (prefix[i + window] - prefix[i]) * inv
        centered = value - mean
        squared = centered * centered
        second += squared
        fourth += squared * squared
        if i > 0:
            d = (value - prev) - diff_mean
            diff_var += d * d
        prev = value
    second /= count
    fourth /= count
    kurtosis = fourth / (second * second) if second > 0.0 else 0.0
    roughness = math.sqrt(diff_var / diff_count) if count >= 2.0 else 0.0
    return roughness, kurtosis


@njit(cache=True)
def _grid_moments(batch, windows, rough_out, kurt_out):  # pragma: no cover - jitted
    """Fill ``(batch, windows)`` moment grids with fused per-row loops."""
    n_series, n = batch.shape
    prefix = np.zeros(n + 1, dtype=np.float64)
    for s in range(n_series):
        row = batch[s]
        acc = 0.0
        for i in range(n):
            acc += row[i]
            prefix[i + 1] = acc
        for j in range(windows.shape[0]):
            rough, kurt = _window_moments_from_prefix(prefix, row, int(windows[j]), n)
            rough_out[s, j] = rough
            kurt_out[s, j] = kurt


@njit(cache=True)
def _cross_products(arr, max_lag, out):  # pragma: no cover - jitted
    n = arr.shape[0]
    for k in range(max_lag + 1):
        acc = 0.0
        for i in range(n - k):
            acc += arr[i] * arr[i + k]
        out[k] = acc


def sma_window_moments_numba(values, window: int) -> tuple[float, float]:
    """Compiled counterpart of :func:`repro.spectral.convolution.sma_window_moments`.

    Agrees with the numpy kernel to ~1e-12 relative (sequential vs pairwise
    reduction order); runs as plain Python when numba is unavailable.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    _validate_window(arr.size, window)
    # Route through the grid kernel so single-window probes and stacked
    # prefetches share one code path bit for bit (the warm-started search
    # relies on this when replaying a prefetched trace).
    rough, kurt = sma_grid_moments_numba(arr, [int(window)])
    return float(rough[0]), float(kurt[0])


def sma_grid_moments_numba(values, windows) -> tuple[np.ndarray, np.ndarray]:
    """Compiled counterpart of :func:`repro.spectral.convolution.sma_grid_moments`.

    Same shape contract: 1-D input yields ``(len(windows),)`` arrays, 2-D
    batches yield ``(batch, len(windows))``.  No padded SMA matrix is ever
    materialized — each (row, window) pair streams over one prefix array.
    """
    batch, was_1d = _as_batch(values)
    batch = np.ascontiguousarray(batch)
    n_series, n = batch.shape
    window_arr = _validated_window_grid(n, windows)
    rough = np.empty((n_series, window_arr.size), dtype=np.float64)
    kurt = np.empty((n_series, window_arr.size), dtype=np.float64)
    _grid_moments(batch, window_arr, rough, kurt)
    if was_1d:
        return rough[0], kurt[0]
    return rough, kurt


def cross_product_sums_numba(values, max_lag: int) -> np.ndarray:
    """Compiled counterpart of :func:`repro.spectral.convolution.cross_product_sums`."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    n = arr.size
    if not 0 <= max_lag < max(n, 1):
        raise ValueError(f"max_lag must be in [0, {n}), got {max_lag}")
    out = np.empty(max_lag + 1, dtype=np.float64)
    _cross_products(arr, int(max_lag), out)
    return out
