"""Alternative smoothing functions (Appendix B.2 of the paper).

ASAP settled on the simple moving average after comparing it against the
Fourier transform, the Savitzky–Golay filter, and MinMax aggregation
(Section 3.3).  Figure B.2 reports the roughness each alternative achieves
when its parameter is selected by ASAP's own criterion (minimize roughness
subject to kurtosis preservation).  This module implements each alternative
from scratch:

* :func:`fft_lowpass` — keep the *k* lowest-frequency components;
* :func:`fft_dominant` — keep the *k* highest-power components;
* :func:`savitzky_golay` — local least-squares polynomial smoothing with
  kernels derived from the normal equations (no scipy);
* :func:`minmax_filter` — per-window min/max pairs, the aggregation used by
  systems that want to preserve extremes.

Each filter is also wrapped as a :class:`ParameterizedFilter` exposing a
candidate-parameter sweep, which the Figure B.2 experiment drives with the
shared selection criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .fft import fft, ifft

__all__ = [
    "fft_lowpass",
    "fft_dominant",
    "savitzky_golay_kernel",
    "savitzky_golay",
    "minmax_filter",
    "ParameterizedFilter",
    "filter_registry",
]


def _as_series(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("cannot filter an empty series")
    return arr


def _reconstruct(spectrum: np.ndarray, keep: np.ndarray, backend: str) -> np.ndarray:
    masked = np.where(keep, spectrum, 0.0)
    return np.real(ifft(masked, backend=backend))


def fft_lowpass(values, n_components: int, backend: str = "numpy") -> np.ndarray:
    """Reconstruct keeping the *n_components* lowest frequencies (plus DC).

    Components are counted as conjugate pairs so the output stays real;
    ``n_components=0`` returns the DC (mean) level.
    """
    arr = _as_series(values)
    if n_components < 0:
        raise ValueError(f"n_components must be >= 0, got {n_components}")
    n = arr.size
    spectrum = fft(arr, backend=backend)
    frequencies = np.minimum(np.arange(n), n - np.arange(n))  # symmetric bin index
    keep = frequencies <= n_components
    return _reconstruct(spectrum, keep, backend)


def fft_dominant(values, n_components: int, backend: str = "numpy") -> np.ndarray:
    """Reconstruct keeping the *n_components* highest-power frequencies.

    DC is always kept; conjugate pairs are kept together.  This is the
    "FFT-dominant" strategy of Figure B.2, which tends to retain the strong
    *high* frequencies of noisy series and therefore smooths poorly — the
    behaviour the paper uses it to demonstrate.
    """
    arr = _as_series(values)
    if n_components < 0:
        raise ValueError(f"n_components must be >= 0, got {n_components}")
    n = arr.size
    spectrum = fft(arr, backend=backend)
    frequencies = np.minimum(np.arange(n), n - np.arange(n))
    power = np.zeros(n // 2 + 1)
    magnitudes = np.abs(spectrum) ** 2
    for bin_index in range(n):
        power[frequencies[bin_index]] += magnitudes[bin_index]
    ranked = np.argsort(power[1:])[::-1] + 1  # exclude DC from ranking
    chosen = set(ranked[:n_components].tolist())
    chosen.add(0)
    keep = np.isin(frequencies, sorted(chosen))
    return _reconstruct(spectrum, keep, backend)


def savitzky_golay_kernel(window: int, degree: int) -> np.ndarray:
    """Least-squares smoothing kernel for a centered window.

    Solves the normal equations for fitting a degree-*degree* polynomial to
    ``window`` equally spaced points and evaluating it at the center — the
    classic Savitzky–Golay construction.  *window* must be odd and larger
    than *degree*.
    """
    if window % 2 == 0 or window < 3:
        raise ValueError(f"window must be odd and >= 3, got {window}")
    if degree < 0 or degree >= window:
        raise ValueError(f"degree must be in [0, window), got {degree}")
    half = window // 2
    positions = np.arange(-half, half + 1, dtype=np.float64)
    vandermonde = np.vander(positions, degree + 1, increasing=True)
    # Center-point evaluation row of the hat matrix: e0^T (A^T A)^-1 A^T.
    gram = vandermonde.T @ vandermonde
    coefficients = np.linalg.solve(gram, vandermonde.T)
    return coefficients[0]


def savitzky_golay(values, window: int, degree: int) -> np.ndarray:
    """Apply Savitzky–Golay smoothing; output has ``n - window + 1`` points.

    Matches SMA's "valid" output length so roughness comparisons between the
    two filters are apples-to-apples (Figure B.2: SG1 = degree 1, SG4 =
    degree 4).
    """
    arr = _as_series(values)
    if window > arr.size:
        raise ValueError(f"window {window} exceeds series length {arr.size}")
    kernel = savitzky_golay_kernel(window, degree)
    return np.convolve(arr, kernel[::-1], mode="valid")


def minmax_filter(values, window: int) -> np.ndarray:
    """Per-bucket (min, max) pairs, flattened in time order.

    Splits the series into ``ceil(n / window)`` disjoint buckets and emits the
    bucket minimum and maximum ordered by their positions — the aggregation a
    min/max-preserving downsampler produces.  By construction consecutive
    output points are far apart, which is why Figure B.2 finds it far rougher
    than SMA.
    """
    arr = _as_series(values)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    out: list[float] = []
    for start in range(0, arr.size, window):
        bucket = arr[start : start + window]
        lo_idx = int(np.argmin(bucket))
        hi_idx = int(np.argmax(bucket))
        first, second = sorted((lo_idx, hi_idx))
        out.append(float(bucket[first]))
        if second != first:
            out.append(float(bucket[second]))
    return np.asarray(out, dtype=np.float64)


@dataclass(frozen=True)
class ParameterizedFilter:
    """A smoothing function plus the parameter sweep Figure B.2 searches.

    ``candidates(n)`` yields parameter values ordered small-to-large effect;
    ``apply(values, param)`` produces the smoothed series.
    """

    name: str
    apply: Callable[[np.ndarray, int], np.ndarray]
    candidates: Callable[[int], Sequence[int]]


def _window_candidates(n: int) -> list[int]:
    upper = max(n // 5, 2)
    return list(range(2, upper + 1))


def _odd_window_candidates(minimum: int) -> Callable[[int], list[int]]:
    def candidates(n: int) -> list[int]:
        upper = max(n // 5, minimum)
        return [w for w in range(minimum, upper + 1) if w % 2 == 1]

    return candidates


def _component_candidates(n: int) -> list[int]:
    # Sweep the number of retained frequency components from aggressive
    # smoothing (1) up to a quarter of the spectrum.
    upper = max(n // 4, 2)
    return list(range(1, upper + 1))


def filter_registry() -> dict[str, ParameterizedFilter]:
    """The five Figure B.2 alternatives keyed by their paper labels."""
    return {
        "FFT-low": ParameterizedFilter(
            name="FFT-low",
            apply=lambda values, k: fft_lowpass(values, k),
            candidates=_component_candidates,
        ),
        "FFT-dominant": ParameterizedFilter(
            name="FFT-dominant",
            apply=lambda values, k: fft_dominant(values, k),
            candidates=_component_candidates,
        ),
        "SG1": ParameterizedFilter(
            name="SG1",
            apply=lambda values, w: savitzky_golay(values, w, degree=1),
            candidates=_odd_window_candidates(3),
        ),
        "SG4": ParameterizedFilter(
            name="SG4",
            apply=lambda values, w: savitzky_golay(values, w, degree=4),
            candidates=_odd_window_candidates(7),
        ),
        "minmax": ParameterizedFilter(
            name="minmax",
            apply=lambda values, w: minmax_filter(values, w),
            candidates=_window_candidates,
        ),
    }
