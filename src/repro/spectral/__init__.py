"""Spectral substrate: FFT, window kernels, and alternative smoothing filters."""

from .fft import fft, ifft, is_power_of_two, next_fast_len
from .convolution import sliding_max, sliding_min, sma, sma_with_slide
from .filters import (
    ParameterizedFilter,
    fft_dominant,
    fft_lowpass,
    filter_registry,
    minmax_filter,
    savitzky_golay,
    savitzky_golay_kernel,
)

__all__ = [
    "fft",
    "ifft",
    "is_power_of_two",
    "next_fast_len",
    "sliding_max",
    "sliding_min",
    "sma",
    "sma_with_slide",
    "ParameterizedFilter",
    "fft_dominant",
    "fft_lowpass",
    "filter_registry",
    "minmax_filter",
    "savitzky_golay",
    "savitzky_golay_kernel",
]
