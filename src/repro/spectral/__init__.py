"""Spectral substrate: FFT, window kernels, and alternative smoothing filters."""

from .fft import fft, ifft, is_power_of_two, next_fast_len
from .convolution import (
    cross_product_sums,
    prefix_moment_stack,
    sliding_max,
    sliding_min,
    sma,
    sma2d,
    sma_grid,
    sma_grid_moments,
    sma_probe_moments,
    sma_window_moments,
    sma_with_slide,
    windowed_moment_sums,
)
from .filters import (
    ParameterizedFilter,
    fft_dominant,
    fft_lowpass,
    filter_registry,
    minmax_filter,
    savitzky_golay,
    savitzky_golay_kernel,
)

__all__ = [
    "fft",
    "ifft",
    "is_power_of_two",
    "next_fast_len",
    "cross_product_sums",
    "prefix_moment_stack",
    "sliding_max",
    "sliding_min",
    "sma",
    "sma2d",
    "sma_grid",
    "sma_grid_moments",
    "sma_probe_moments",
    "sma_window_moments",
    "sma_with_slide",
    "windowed_moment_sums",
    "ParameterizedFilter",
    "fft_dominant",
    "fft_lowpass",
    "filter_registry",
    "minmax_filter",
    "savitzky_golay",
    "savitzky_golay_kernel",
]
