"""Moving-window aggregation kernels.

The simple moving average (SMA) is ASAP's smoothing function (Section 3.3).
Smoothing the same series at many candidate windows is the inner loop of every
search strategy, so the implementation matters: we use an exact prefix-sum
formulation that computes *all* windows of one size in O(n) regardless of the
window length, plus sliding min/max (monotonic deque, O(n)) for the MinMax
filter comparison of Appendix B.2.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["sma", "sma_with_slide", "sliding_min", "sliding_max"]


def _validate_window(n: int, window: int) -> None:
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window > n:
        raise ValueError(f"window {window} exceeds series length {n}")


def sma(values, window: int) -> np.ndarray:
    """Simple moving average with slide 1: every full window of *window* points.

    Returns ``n - window + 1`` points where ``out[i] = mean(x[i : i+window])``.
    Uses a compensated prefix-sum so cost is O(n) independent of window size.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    _validate_window(arr.size, window)
    if window == 1:
        return arr.copy()
    prefix = np.concatenate(([0.0], np.cumsum(arr)))
    return (prefix[window:] - prefix[:-window]) / window


def sma_with_slide(values, window: int, slide: int) -> np.ndarray:
    """Simple moving average with an explicit slide between window starts.

    ``slide == 1`` matches :func:`sma`; ``slide == window`` produces disjoint
    bucket means (the pixel-aware preaggregation of Section 4.4).
    """
    if slide < 1:
        raise ValueError(f"slide must be >= 1, got {slide}")
    dense = sma(values, window)
    return dense[::slide].copy()


def _sliding_extreme(values, window: int, take_max: bool) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    _validate_window(arr.size, window)
    out = np.empty(arr.size - window + 1, dtype=np.float64)
    candidates: deque[int] = deque()
    for i, value in enumerate(arr):
        while candidates and (
            arr[candidates[-1]] <= value if take_max else arr[candidates[-1]] >= value
        ):
            candidates.pop()
        candidates.append(i)
        if candidates[0] <= i - window:
            candidates.popleft()
        if i >= window - 1:
            out[i - window + 1] = arr[candidates[0]]
    return out


def sliding_min(values, window: int) -> np.ndarray:
    """Minimum of every full window, in O(n) via a monotonic deque."""
    return _sliding_extreme(values, window, take_max=False)


def sliding_max(values, window: int) -> np.ndarray:
    """Maximum of every full window, in O(n) via a monotonic deque."""
    return _sliding_extreme(values, window, take_max=True)
