"""Moving-window aggregation kernels.

The simple moving average (SMA) is ASAP's smoothing function (Section 3.3).
Smoothing the same series at many candidate windows is the inner loop of every
search strategy, so the implementation matters: we use an exact prefix-sum
formulation that computes *all* windows of one size in O(n) regardless of the
window length, plus sliding min/max (monotonic deque, O(n)) for the MinMax
filter comparison of Appendix B.2.

Beyond the original single-series kernels this module provides the batched
substrate of the multi-series engine (:mod:`repro.engine`):

* :func:`sma2d` — smooth a whole batch of equal-length series at one window;
* :func:`sma_grid` — smooth one series at a whole *grid* of candidate windows
  in a single padded array operation;
* :func:`prefix_moment_stack` / :func:`windowed_moment_sums` — prefix sums of
  ``x, x^2, ..., x^p`` so every sliding-window raw moment costs O(1) per
  position;
* :func:`sma_grid_moments` — roughness and kurtosis of ``SMA(x, w)`` for every
  window in a grid (and for every series in a batch) without per-window
  Python loops.

Determinism contract: a value computed through a batch path is bit-identical
to the same value computed alone — row-wise numpy reductions over a
contiguous final axis do not depend on the number of rows, and chunking and
fill-strategy choices never change buffer contents.  ``sma2d`` and
``sma_grid`` rows are additionally bit-identical to the scalar :func:`sma`;
the *moments* of :func:`sma_grid_moments` agree with the scalar statistics
kernels to floating-point roundoff (the reductions use a different — faster —
summation order than the scalar two-pass reference).
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

__all__ = [
    "sma",
    "sma_with_slide",
    "sliding_min",
    "sliding_max",
    "sma2d",
    "sma_grid",
    "prefix_moment_stack",
    "windowed_moment_sums",
    "sma_grid_moments",
    "sma_window_moments",
    "sma_probe_moments",
    "cross_product_sums",
]

#: Upper bound on elements materialized per chunk by the grid kernels.  The
#: kernels stream a handful of same-sized temporaries per chunk, so this
#: budget (~512 KB of float64 per temporary) keeps the working set inside the
#: CPU cache hierarchy — measured 5-10x faster than letting chunks grow to
#: tens of MB — while still amortizing numpy dispatch over thousands of
#: elements.  Chunking never changes results: every row's reduction is
#: independent of its chunk-mates.
_GRID_CHUNK_ELEMENTS = 65_536


def _validate_window(n: int, window: int, label: str = "") -> None:
    """Shared window validation for every kernel in this module.

    Messages always include the series length so that a failure inside a
    batched call identifies exactly which input was too short; *label* (e.g.
    ``"series 'cpu.load'"``) prefixes the message when batch callers know
    which row they are validating.
    """
    prefix = f"{label}: " if label else ""
    if window < 1:
        raise ValueError(
            f"{prefix}window must be >= 1, got {window} (series length {n})"
        )
    if window > n:
        raise ValueError(f"{prefix}window {window} exceeds series length {n}")


def sma(values, window: int) -> np.ndarray:
    """Simple moving average with slide 1: every full window of *window* points.

    Returns ``n - window + 1`` points where ``out[i] = mean(x[i : i+window])``.
    Uses a compensated prefix-sum so cost is O(n) independent of window size.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    _validate_window(arr.size, window)
    if window == 1:
        return arr.copy()
    prefix = np.concatenate(([0.0], np.cumsum(arr)))
    return (prefix[window:] - prefix[:-window]) / window


def sma_with_slide(values, window: int, slide: int) -> np.ndarray:
    """Simple moving average with an explicit slide between window starts.

    ``slide == 1`` matches :func:`sma`; ``slide == window`` produces disjoint
    bucket means (the pixel-aware preaggregation of Section 4.4).
    """
    if slide < 1:
        raise ValueError(f"slide must be >= 1, got {slide}")
    dense = sma(values, window)
    return dense[::slide].copy()


def _sliding_extreme(values, window: int, take_max: bool) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    _validate_window(arr.size, window)
    out = np.empty(arr.size - window + 1, dtype=np.float64)
    candidates: deque[int] = deque()
    for i, value in enumerate(arr):
        while candidates and (
            arr[candidates[-1]] <= value if take_max else arr[candidates[-1]] >= value
        ):
            candidates.pop()
        candidates.append(i)
        if candidates[0] <= i - window:
            candidates.popleft()
        if i >= window - 1:
            out[i - window + 1] = arr[candidates[0]]
    return out


def sliding_min(values, window: int) -> np.ndarray:
    """Minimum of every full window, in O(n) via a monotonic deque."""
    return _sliding_extreme(values, window, take_max=False)


def sliding_max(values, window: int) -> np.ndarray:
    """Maximum of every full window, in O(n) via a monotonic deque."""
    return _sliding_extreme(values, window, take_max=True)


# -- batched kernels ----------------------------------------------------------


def _as_batch(values) -> tuple[np.ndarray, bool]:
    """Coerce to a (batch, n) float64 array; report whether input was 1-D."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        return arr[np.newaxis, :], True
    if arr.ndim == 2:
        return arr, False
    raise ValueError(f"expected a 1-D series or 2-D batch, got shape {arr.shape}")


def sma2d(values, window: int) -> np.ndarray:
    """Simple moving average of every row of a 2-D batch at one window.

    ``values`` has shape ``(batch, n)``; the result has shape
    ``(batch, n - window + 1)`` and row *i* equals ``sma(values[i], window)``
    bit for bit.  This is the Grafana-transformer shape: smooth every numeric
    field of a frame in one array operation.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {arr.shape}")
    batch, n = arr.shape
    _validate_window(n, window, label=f"batch of {batch} series")
    if window == 1:
        return arr.copy()
    prefix = np.zeros((batch, n + 1), dtype=np.float64)
    np.cumsum(arr, axis=1, out=prefix[:, 1:])
    return (prefix[:, window:] - prefix[:, :-window]) / window


def sma_grid(values, windows) -> tuple[np.ndarray, np.ndarray]:
    """SMA of one series at every window in *windows*, as one padded matrix.

    Returns ``(matrix, lengths)`` where ``matrix`` has shape
    ``(len(windows), n)``: row *j* holds ``sma(values, windows[j])`` in its
    first ``lengths[j] = n - windows[j] + 1`` entries (bit-identical to the
    1-D kernel) and zeros beyond.  This is the inner data structure of the
    vectorized candidate evaluator: every candidate window of a search is
    smoothed by a single prefix-sum gather.  The matrix is materialized whole
    (``len(windows) * n`` floats); for moment grids over large window sets
    prefer :func:`sma_grid_moments`, which chunks internally.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    n = arr.size
    window_arr = _validated_window_grid(n, windows)
    prefix = np.concatenate(([0.0], np.cumsum(arr)))
    starts = np.arange(n)
    ends = starts[np.newaxis, :] + window_arr[:, np.newaxis]
    valid = ends <= n
    matrix = (prefix[np.minimum(ends, n)] - prefix[starts]) / window_arr[
        :, np.newaxis
    ].astype(np.float64)
    matrix[~valid] = 0.0
    # Window 1 is an exact identity in the scalar kernel; bypass the prefix
    # arithmetic (whose rounding would differ) for those rows.
    matrix[window_arr == 1] = arr
    lengths = n - window_arr + 1
    return matrix, lengths


def _validated_window_grid(n: int, windows, label: str = "") -> np.ndarray:
    window_arr = np.atleast_1d(np.asarray(windows, dtype=np.int64))
    if window_arr.ndim != 1:
        raise ValueError(f"windows must be a 1-D sequence, got shape {window_arr.shape}")
    for window in window_arr:
        _validate_window(n, int(window), label=label)
    return window_arr


def prefix_moment_stack(values, max_power: int = 4) -> np.ndarray:
    """Prefix sums of ``x, x^2, ..., x^max_power`` in one ``(p, n+1)`` array.

    ``stack[p - 1, i]`` is ``sum(values[:i] ** p)``, so the raw moment sum of
    any window ``[i, j)`` is ``stack[p - 1, j] - stack[p - 1, i]`` — O(1) per
    window regardless of its size.  Apply to ``np.diff(values)`` to get the
    first-difference stacks that power :func:`~repro.timeseries.stats.rolling_roughness`.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    if max_power < 1:
        raise ValueError(f"max_power must be >= 1, got {max_power}")
    stack = np.zeros((max_power, arr.size + 1), dtype=np.float64)
    power = np.ones_like(arr)
    for p in range(max_power):
        power = power * arr
        np.cumsum(power, out=stack[p, 1:])
    return stack


def windowed_moment_sums(stack: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window sums of each power in a prefix stack.

    Given ``stack`` from :func:`prefix_moment_stack` over a length-*n* series,
    returns a ``(p, n - window + 1)`` array whose ``[p - 1, i]`` entry is
    ``sum(values[i : i + window] ** p)``.
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 2:
        raise ValueError(f"expected a (power, n+1) stack, got shape {stack.shape}")
    n = stack.shape[1] - 1
    _validate_window(n, window)
    return stack[:, window:] - stack[:, :-window]


def sma_window_moments(values, window: int) -> tuple[float, float]:
    """Roughness and kurtosis of ``SMA(x, window)`` for one candidate window.

    Bit-identical to ``sma_grid_moments(values, [window])`` — it performs the
    same operations on the same padded buffers in the same order, minus the
    grid/batch bookkeeping — so single-candidate probes (binary-search steps,
    streaming revalidation of the previous window) skip the 3-D machinery.
    The equivalence is pinned by ``tests/spectral``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    n = arr.size
    _validate_window(n, window)
    window = int(window)
    span = n - window + 1
    count = float(span)
    smoothed = np.zeros(n, dtype=np.float64)
    if window == 1:
        smoothed[:] = arr
    else:
        prefix = np.zeros(n + 1, dtype=np.float64)
        np.cumsum(arr, out=prefix[1:])
        smoothed[:span] = (prefix[window : window + span] - prefix[:span]) / float(window)

    mean = smoothed.sum() / count
    centered = np.zeros(n, dtype=np.float64)
    centered[:span] = smoothed[:span] - mean
    squared = centered * centered
    second = squared.sum() / count
    fourth = (squared * squared).sum() / count
    kurtosis = fourth / (second * second) if second > 0.0 else 0.0

    diff_count = max(count - 1.0, 1.0)
    diffs = np.zeros(n - 1, dtype=np.float64)
    if span >= 2:
        diffs[: span - 1] = smoothed[1:span] - smoothed[: span - 1]
    diff_mean = diffs.sum() / diff_count
    diff_centered = np.zeros(n - 1, dtype=np.float64)
    if span >= 2:
        diff_centered[: span - 1] = diffs[: span - 1] - diff_mean
    diff_var = (diff_centered * diff_centered).sum() / diff_count
    roughness = math.sqrt(diff_var) if count >= 2.0 else 0.0
    return roughness, kurtosis


def sma_probe_moments(values, windows, workspace=None) -> tuple[np.ndarray, np.ndarray]:
    """Roughness and kurtosis of ``SMA(x, w)`` for a small *probe set* of windows.

    Bit-identical to ``[sma_window_moments(values, w) for w in windows]`` — it
    builds the same zero-padded length-``n`` smoothed rows (window 1 bypasses
    the prefix arithmetic exactly as the scalar kernel does) and reduces each
    with the same final-axis sums — but performs every step as one stacked
    array operation, so a handful of windows costs one numpy dispatch
    sequence instead of one per window.  This is the warm-start prefetch
    kernel of the streaming operator: the previous refresh's probe trace is
    evaluated in a single call before the search replays over the cache.

    Unlike :func:`sma_grid_moments` it never chunks (probe sets are small by
    construction) and keeps the whole ``(len(windows), n)`` buffer resident;
    prefer the grid kernel for large candidate grids.

    Implementation notes on the bit-identity (and the speed):

    * each smoothed row is filled with the *same contiguous slice arithmetic*
      as the single-window kernel (one cheap dispatch pair per row — never
      the gather/fancy-index formulation, whose per-element cost would eat
      the dispatch savings);
    * the scalar kernel's zero padding beyond each row's valid span is
      reproduced with explicit small writes — per-row tail zeroing
      (``window - 1`` elements each) and the single boundary element of each
      diff row — so every padded buffer holds exactly the scalar kernel's
      bytes before each reduction, without any full-width mask pass;
    * two ``(len(windows), n)`` buffers are threaded through every stage with
      ``out=``.  Callers on a hot path (the streaming operator's warm-start
      prefetch) can pass *workspace* — a C-contiguous float64 array of shape
      ``(2, >= len(windows), >= n)`` — to reuse allocations across calls;
      every cell the reductions read is rewritten first, so stale workspace
      contents never leak into results.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    n = arr.size
    window_arr = _validated_window_grid(n, windows)
    k = window_arr.size
    spans = n - window_arr + 1
    counts = spans.astype(np.float64)

    if (
        workspace is not None
        and workspace.dtype == np.float64
        and workspace.ndim == 3
        and workspace.shape[0] >= 2
        and workspace.shape[1] >= k
        and workspace.shape[2] == n
        and workspace.flags["C_CONTIGUOUS"]
    ):
        smoothed = workspace[0, :k]
        scratch = workspace[1, :k]
    else:
        smoothed = np.empty((k, n), dtype=np.float64)
        scratch = np.empty((k, n), dtype=np.float64)

    prefix = np.zeros(n + 1, dtype=np.float64)
    np.cumsum(arr, out=prefix[1:])
    # Every row's zero tail lives in columns >= the smallest span; one block
    # write clears them all, and each row's valid slice is written on top.
    min_span = int(spans.min())
    smoothed[:, min_span:] = 0.0
    divisors = window_arr.astype(np.float64)
    for i, window in enumerate(window_arr):
        if window == 1:
            # Window 1 is an exact identity in the scalar kernel; bypass the
            # prefix arithmetic (whose rounding would differ) for those rows.
            # Dividing by 1.0 below is bitwise exact, so the row survives the
            # shared divide untouched.
            smoothed[i] = arr
        else:
            span = int(spans[i])
            np.subtract(
                prefix[window : window + span], prefix[:span], out=smoothed[i, :span]
            )
    # One broadcast divide replaces a dispatch per row; elementwise division
    # is shape-independent, and the zero tails stay exactly +0.0.
    np.divide(smoothed, divisors[:, np.newaxis], out=smoothed)

    means = smoothed.sum(axis=-1) / counts
    np.subtract(smoothed, means[:, np.newaxis], out=scratch)
    for i, span in enumerate(spans):
        scratch[i, span:] = 0.0
    np.multiply(scratch, scratch, out=scratch)
    second = scratch.sum(axis=-1) / counts
    np.multiply(scratch, scratch, out=scratch)
    fourth = scratch.sum(axis=-1) / counts
    safe_second = np.where(second > 0.0, second, 1.0)
    kurtosis = np.where(second > 0.0, fourth / (safe_second * safe_second), 0.0)

    # diff(sma(x, w)) has n - w entries; its population std is the roughness.
    # The first span-1 positions of each row are the valid diffs.  The
    # full-width subtraction lands exact zeros beyond them on its own
    # (0 - 0), except the one boundary element (0 - last smoothed value).
    diff_counts = np.maximum(counts - 1.0, 1.0)
    diffs = scratch[:, : max(n - 1, 0)]
    np.subtract(smoothed[:, 1:], smoothed[:, :-1], out=diffs)
    for i, span in enumerate(spans):
        if span <= n - 1:
            diffs[i, span - 1] = 0.0
    diff_means = diffs.sum(axis=-1) / diff_counts
    # Columns below the smallest span are valid diffs in every row: center
    # them with one broadcast subtract, then finish each row's remainder
    # (at most the window spread) individually.  Tails past span - 1 hold
    # exact zeros and must stay untouched for the padded sums to agree.
    shared = min_span - 1
    if shared > 0:
        np.subtract(
            diffs[:, :shared], diff_means[:, np.newaxis], out=diffs[:, :shared]
        )
    for i, span in enumerate(spans):
        row = diffs[i, shared : span - 1]
        np.subtract(row, diff_means[i], out=row)
    np.multiply(diffs, diffs, out=diffs)
    diff_var = diffs.sum(axis=-1) / diff_counts
    roughness = np.where(counts >= 2.0, np.sqrt(diff_var), 0.0)
    return roughness, kurtosis


def cross_product_sums(values, max_lag: int) -> np.ndarray:
    """Lagged cross-product sums ``s[k] = sum_i x[i] * x[i + k]``, k = 0..max_lag.

    These are the raw sufficient statistics of the autocorrelation estimator:
    together with the window's ordinary sums they determine the full
    correlogram (see :mod:`repro.core.acf`).  The streaming operator maintains
    them incrementally — one O(max_lag) update per arriving pane — and uses
    this kernel for its periodic from-scratch recomputation, so the exact
    values the incremental path drifts toward are defined in one place.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    n = arr.size
    if not 0 <= max_lag < max(n, 1):
        raise ValueError(f"max_lag must be in [0, {n}), got {max_lag}")
    out = np.empty(max_lag + 1, dtype=np.float64)
    for k in range(max_lag + 1):
        out[k] = float(np.dot(arr[: n - k], arr[k:]))
    return out


def sma_grid_moments(
    values, windows, *, storage: str = "float64"
) -> tuple[np.ndarray, np.ndarray]:
    """Roughness and kurtosis of ``SMA(x, w)`` for a whole grid of windows.

    ``values`` is one series ``(n,)`` or a batch ``(batch, n)``; *windows* is
    a 1-D grid of candidate window sizes valid for every row.  Returns
    ``(roughness, kurtosis)`` with shape ``(len(windows),)`` for 1-D input or
    ``(batch, len(windows))`` for 2-D input, where entry ``[.., j]`` matches
    ``roughness(sma(x, w_j))`` / ``kurtosis(sma(x, w_j))`` of the scalar
    kernels (:mod:`repro.timeseries.stats`) to floating-point roundoff (not
    bitwise: the moment reductions use a faster summation order than the
    scalar reference).

    The kernel materializes the padded SMA matrix per chunk of rows (bounded
    by an internal element budget) and reduces with row-wise numpy ops, so an
    exhaustive search's entire candidate grid — or a dashboard's entire batch
    of series — costs one call instead of ``len(windows)`` Python iterations.
    The values it produces are deterministic and independent of how the grid
    or batch is chunked: evaluating a window alone yields bit-identical
    results to evaluating it inside any larger grid.

    ``storage="float32"`` keeps the padded SMA matrix (the kernel's dominant
    memory traffic) in single precision while accumulating every reduction in
    float64.  Moments then agree with the float64 path only to ~1e-7 — **not**
    the repo's 1e-9 discipline — so this is an opt-in lane for memory-bound
    batch sweeps where window *selection* tolerance is verified empirically
    (see ``benchmarks/bench_kernels.py``); no serving path uses it.
    """
    if storage not in ("float64", "float32"):
        raise ValueError(
            f"storage must be 'float64' or 'float32', got {storage!r}"
        )
    batch, was_1d = _as_batch(values)
    n_series, n = batch.shape
    window_arr = _validated_window_grid(n, windows)
    n_windows = window_arr.size

    roughness_out = np.empty((n_series, n_windows), dtype=np.float64)
    kurtosis_out = np.empty((n_series, n_windows), dtype=np.float64)

    prefix = np.zeros((n_series, n + 1), dtype=np.float64)
    np.cumsum(batch, axis=1, out=prefix[:, 1:])

    # Chunk over series (outer) and windows (inner) to bound peak memory at
    # ~a few multiples of _GRID_CHUNK_ELEMENTS float64 temporaries.
    windows_per_chunk = max(1, _GRID_CHUNK_ELEMENTS // max(n, 1))
    series_per_chunk = max(1, _GRID_CHUNK_ELEMENTS // max(n * min(n_windows, windows_per_chunk), 1))

    starts = np.arange(n)
    for s0 in range(0, n_series, series_per_chunk):
        s1 = min(s0 + series_per_chunk, n_series)
        chunk_prefix = prefix[s0:s1]
        for w0 in range(0, n_windows, windows_per_chunk):
            w1 = min(w0 + windows_per_chunk, n_windows)
            grid = window_arr[w0:w1]
            rough, kurt = _grid_moments_chunk(
                batch[s0:s1], chunk_prefix, starts, grid, n, storage
            )
            roughness_out[s0:s1, w0:w1] = rough
            kurtosis_out[s0:s1, w0:w1] = kurt

    if was_1d:
        return roughness_out[0], kurtosis_out[0]
    return roughness_out, kurtosis_out


def _grid_moments_chunk(
    rows: np.ndarray,
    prefix: np.ndarray,
    starts: np.ndarray,
    windows: np.ndarray,
    n: int,
    storage: str = "float64",
) -> tuple[np.ndarray, np.ndarray]:
    """Moments of the smoothed series for one (series-chunk, window-chunk).

    ``rows`` is the raw ``(b, n)`` chunk, ``prefix`` its ``(b, n+1)`` prefix
    sums; the result arrays are ``(b, len(windows))``.  All reductions run
    over the contiguous final axis, row by row, mirroring the scalar
    implementations operation for operation.  With ``storage="float32"`` the
    smoothed buffer is demoted to single precision after the exact fill; the
    reductions keep float64 accumulators (``dtype=`` on every sum).
    """
    counts = (n - windows + 1).astype(np.float64)  # (w,)
    spans = [int(n - w + 1) for w in windows]

    # Fill the padded (b, w, n) SMA buffer.  Small grids fill window by
    # window with dense slice arithmetic; large grids use one fancy-indexed
    # gather.  Both write identical values (the same prefix differences over
    # the same zeros), so the choice is purely a performance heuristic.
    if windows.size <= 64:
        smoothed = np.zeros((prefix.shape[0], windows.size, n), dtype=np.float64)
        for position, window in enumerate(windows):
            width = int(window)
            if width == 1:
                # Window 1 is an exact identity in the scalar kernel; bypass
                # the prefix arithmetic (whose rounding would differ).
                smoothed[:, position, :] = rows
                continue
            span = spans[position]
            smoothed[:, position, :span] = (
                prefix[:, width : width + span] - prefix[:, :span]
            ) / float(width)
    else:
        ends = starts[np.newaxis, :] + windows[:, np.newaxis]
        valid = ends <= n
        gathered = prefix[:, np.minimum(ends, n)]  # (b, w, n)
        smoothed = (gathered - prefix[:, np.newaxis, :n]) / windows[
            np.newaxis, :, np.newaxis
        ].astype(np.float64)
        smoothed = np.where(valid[np.newaxis, :, :], smoothed, 0.0)
        identity = windows == 1
        if identity.any():
            smoothed[:, identity, :] = rows[:, np.newaxis, :]

    # Demote the resident buffer only after the exact fill: the fill
    # arithmetic stays float64, and every reduction below accumulates in
    # float64 regardless of the buffer dtype.
    if storage == "float32":
        smoothed = smoothed.astype(np.float32)

    # Row statistics over the padded buffers.  The zero padding contributes
    # nothing to any sum, and the mean subtractions write only the valid
    # spans, so every reduction sees exactly the masked values while touching
    # roughly half the memory a fully masked formulation would.
    means = smoothed.sum(axis=-1, dtype=np.float64) / counts  # (b, w)
    centered = np.zeros_like(smoothed)
    for position, span in enumerate(spans):
        centered[:, position, :span] = (
            smoothed[:, position, :span] - means[:, position, np.newaxis]
        )
    squared = centered * centered
    second = squared.sum(axis=-1, dtype=np.float64) / counts
    fourth = (squared * squared).sum(axis=-1, dtype=np.float64) / counts
    safe_second = np.where(second > 0.0, second, 1.0)
    kurtosis = np.where(second > 0.0, fourth / (safe_second * safe_second), 0.0)

    # diff(sma(x, w)) has n - w entries; its population std is the roughness.
    diff_counts = np.maximum(counts - 1.0, 1.0)
    diffs = np.zeros((smoothed.shape[0], windows.size, n - 1), dtype=smoothed.dtype)
    for position, span in enumerate(spans):
        if span >= 2:
            diffs[:, position, : span - 1] = (
                smoothed[:, position, 1:span] - smoothed[:, position, : span - 1]
            )
    diff_means = diffs.sum(axis=-1, dtype=np.float64) / diff_counts
    diff_centered = np.zeros_like(diffs)
    for position, span in enumerate(spans):
        if span >= 2:
            diff_centered[:, position, : span - 1] = (
                diffs[:, position, : span - 1] - diff_means[:, position, np.newaxis]
            )
    diff_var = (diff_centered * diff_centered).sum(axis=-1, dtype=np.float64) / diff_counts
    roughness = np.where(counts >= 2.0, np.sqrt(diff_var), 0.0)
    return roughness, kurtosis
