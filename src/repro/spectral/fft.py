"""A from-scratch Fast Fourier Transform.

The paper's headline optimization computes autocorrelation "using two Fast
Fourier Transforms" in O(n log n) (Section 4.3.3), noting that FFTs come as
"mature software libraries and increasingly common hardware implementations".
This module *is* that substrate: an iterative radix-2 Cooley–Tukey transform
for power-of-two sizes, extended to arbitrary sizes with Bluestein's chirp-z
algorithm.  It is validated against ``numpy.fft`` in the test suite.

The production autocorrelation path (:mod:`repro.core.acf`) calls
:func:`fft`/:func:`ifft` from here by default; callers that want numpy's
C-optimized routines can pass ``backend="numpy"``.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = ["fft", "ifft", "rfft_autocorrelation_lengths", "next_fast_len", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    """True when *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_fast_len(n: int) -> int:
    """Smallest power of two >= *n* (the sizes our radix-2 kernel accepts)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses positions for a radix-2 FFT."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        reversed_indices = (reversed_indices << 1) | (indices & 1)
        indices >>= 1
    return reversed_indices


def _fft_pow2(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Iterative in-place radix-2 Cooley–Tukey FFT (n must be a power of 2)."""
    n = x.size
    if n == 1:
        return x.astype(np.complex128, copy=True)
    data = x.astype(np.complex128)[_bit_reverse_permutation(n)]
    sign = 1.0 if inverse else -1.0
    size = 2
    while size <= n:
        half = size // 2
        angles = sign * 2.0j * np.pi * np.arange(half) / size
        twiddle = np.exp(angles)
        blocks = data.reshape(n // size, size)
        even = blocks[:, :half].copy()  # copy: the slice is overwritten below
        odd = blocks[:, half:] * twiddle
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        size *= 2
    return data


def _fft_bluestein(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Arbitrary-size FFT via Bluestein's chirp-z: any DFT as a convolution."""
    n = x.size
    sign = 1.0 if inverse else -1.0
    # The chirp sequence uses k^2/2 phases; use exact integer arithmetic mod 2n
    # to avoid precision loss for large n.
    k_sq = (np.arange(n, dtype=np.int64) ** 2) % (2 * n)
    chirp = np.exp(sign * 1.0j * np.pi * k_sq / n)
    a = x.astype(np.complex128) * chirp
    m = next_fast_len(2 * n - 1)
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1:] = np.conj(chirp[1:][::-1])
    fa = _fft_pow2(np.concatenate([a, np.zeros(m - n, dtype=np.complex128)]), inverse=False)
    fb = _fft_pow2(b, inverse=False)
    conv = _fft_pow2(fa * fb, inverse=True) / m
    return conv[:n] * chirp


def fft(values, backend: str = "native") -> np.ndarray:
    """Discrete Fourier transform of a real or complex sequence.

    Parameters
    ----------
    values:
        1-D array-like, real or complex.
    backend:
        ``"native"`` uses this module's radix-2/Bluestein implementation;
        ``"numpy"`` delegates to :func:`numpy.fft.fft`.
    """
    x = np.asarray(values)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {x.shape}")
    if backend == "numpy":
        return np.fft.fft(x)
    if backend != "native":
        raise ValueError(f"unknown backend {backend!r}; use 'native' or 'numpy'")
    if x.size == 0:
        return np.zeros(0, dtype=np.complex128)
    if is_power_of_two(x.size):
        return _fft_pow2(np.asarray(x, dtype=np.complex128), inverse=False)
    return _fft_bluestein(np.asarray(x, dtype=np.complex128), inverse=False)


def ifft(values, backend: str = "native") -> np.ndarray:
    """Inverse DFT (normalized by 1/n), matching :func:`numpy.fft.ifft`."""
    x = np.asarray(values)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {x.shape}")
    if backend == "numpy":
        return np.fft.ifft(x)
    if backend != "native":
        raise ValueError(f"unknown backend {backend!r}; use 'native' or 'numpy'")
    if x.size == 0:
        return np.zeros(0, dtype=np.complex128)
    if is_power_of_two(x.size):
        return _fft_pow2(np.asarray(x, dtype=np.complex128), inverse=True) / x.size
    return _fft_bluestein(np.asarray(x, dtype=np.complex128), inverse=True) / x.size


def rfft_autocorrelation_lengths(n: int) -> int:
    """Padded transform length for linear (non-circular) autocorrelation.

    Autocorrelation by FFT must zero-pad to at least ``2n`` so the circular
    convolution does not wrap; rounding up to a power of two keeps the
    radix-2 kernel on its fast path.
    """
    if n <= 0:
        raise ValueError(f"series length must be positive, got {n}")
    return next_fast_len(2 * n)


def dft_reference(values) -> np.ndarray:
    """O(n^2) textbook DFT, used only as a test oracle for tiny inputs."""
    x = np.asarray(values, dtype=np.complex128)
    n = x.size
    out = np.zeros(n, dtype=np.complex128)
    for k in range(n):
        total = 0.0 + 0.0j
        for t in range(n):
            total += x[t] * cmath.exp(-2.0j * math.pi * k * t / n)
        out[k] = total
    return out
