"""The :class:`TimeSeries` container.

A ``TimeSeries`` pairs a float64 value array with (optionally implicit)
monotonically increasing timestamps.  It is the unit of data flowing through
every ASAP operator: batch smoothing consumes one, the streaming operator
emits a sequence of them, and the visualization substrate rasterizes them.

The container is deliberately immutable-by-convention (the underlying numpy
arrays are set non-writeable) so that operators can share slices without
defensive copies — the style used throughout time-series engines the paper
targets (InfluxDB, Gorilla, MacroBase).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from . import stats

__all__ = ["TimeSeries", "regular_timestamps"]


def regular_timestamps(n: int, start: float = 0.0, step: float = 1.0) -> np.ndarray:
    """Evenly spaced timestamps ``start, start+step, ...`` of length *n*."""
    if n < 0:
        raise ValueError(f"length must be non-negative, got {n}")
    if step <= 0:
        raise ValueError(f"timestamp step must be positive, got {step}")
    return start + step * np.arange(n, dtype=np.float64)


class TimeSeries:
    """An ordered sequence of (timestamp, value) pairs.

    Parameters
    ----------
    values:
        One-dimensional array-like of real values.
    timestamps:
        Optional array-like of the same length; must be strictly increasing.
        When omitted, implicit indices ``0..n-1`` are used.
    name:
        Optional label carried through transformations for display.
    """

    __slots__ = ("_values", "_timestamps", "name")

    def __init__(self, values, timestamps=None, name: str = "") -> None:
        arr = np.array(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("values must be finite (no NaN/inf)")
        if timestamps is None:
            ts = regular_timestamps(arr.size)
        else:
            ts = np.array(timestamps, dtype=np.float64)
            if ts.shape != arr.shape:
                raise ValueError(
                    f"timestamps shape {ts.shape} != values shape {arr.shape}"
                )
            if ts.size > 1 and not np.all(np.diff(ts) > 0):
                raise ValueError("timestamps must be strictly increasing")
        arr.setflags(write=False)
        ts.setflags(write=False)
        self._values = arr
        self._timestamps = ts
        self.name = name

    # -- basic protocol ----------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The (read-only) value array."""
        return self._values

    @property
    def timestamps(self) -> np.ndarray:
        """The (read-only) timestamp array."""
        return self._timestamps

    def __len__(self) -> int:
        return int(self._values.size)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return zip(self._timestamps.tolist(), self._values.tolist())

    def __getitem__(self, key):
        if isinstance(key, slice):
            return TimeSeries(
                self._values[key], self._timestamps[key], name=self.name
            )
        return (float(self._timestamps[key]), float(self._values[key]))

    def __eq__(self, other) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return bool(
            np.array_equal(self._values, other._values)
            and np.array_equal(self._timestamps, other._timestamps)
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<TimeSeries{label} n={len(self)}>"

    # -- statistics --------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        return stats.mean(self._values)

    def std(self) -> float:
        """Population standard deviation of the values."""
        return stats.std(self._values)

    def variance(self) -> float:
        """Population variance of the values."""
        return stats.variance(self._values)

    def kurtosis(self) -> float:
        """Non-excess kurtosis of the values (normal = 3)."""
        return stats.kurtosis(self._values)

    def roughness(self) -> float:
        """Standard deviation of the first-difference series."""
        return stats.roughness(self._values)

    # -- transformations ---------------------------------------------------

    def zscore(self) -> "TimeSeries":
        """Standardized copy (zero mean, unit variance), timestamps kept."""
        return TimeSeries(
            stats.zscore(self._values), self._timestamps, name=self.name
        )

    def with_values(self, values, timestamps=None) -> "TimeSeries":
        """A new series with the same name and fresh values/timestamps."""
        return TimeSeries(
            values,
            self._timestamps if timestamps is None else timestamps,
            name=self.name,
        )

    def head(self, n: int) -> "TimeSeries":
        """The first *n* points."""
        return self[: max(n, 0)]

    def tail(self, n: int) -> "TimeSeries":
        """The last *n* points."""
        if n <= 0:
            return self[len(self):]
        return self[-n:]

    def slice_time(self, start: float, end: float) -> "TimeSeries":
        """Points with ``start <= timestamp < end``."""
        if end < start:
            raise ValueError(f"end {end} precedes start {start}")
        lo = int(np.searchsorted(self._timestamps, start, side="left"))
        hi = int(np.searchsorted(self._timestamps, end, side="left"))
        return self[lo:hi]

    @staticmethod
    def concat(parts: Sequence["TimeSeries"], name: str = "") -> "TimeSeries":
        """Concatenate series whose timestamp ranges do not overlap."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return TimeSeries([], name=name)
        values = np.concatenate([p.values for p in parts])
        timestamps = np.concatenate([p.timestamps for p in parts])
        return TimeSeries(values, timestamps, name=name or parts[0].name)
