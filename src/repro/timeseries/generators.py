"""Synthetic time-series generators.

These produce the building blocks — noise, periodicity, trend, anomalies —
from which :mod:`repro.timeseries.datasets` reconstructs the paper's eleven
evaluation traces, and which the test suite uses for controlled experiments
(e.g. the IID analysis of Section 4.2 needs pure white noise; the
autocorrelation pruning of Section 4.3 needs known-period signals).

Every generator takes an explicit ``seed`` (or a ``numpy.random.Generator``)
so that datasets, tests, and benchmarks are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .series import TimeSeries

__all__ = [
    "rng_from",
    "white_noise",
    "laplace_noise",
    "uniform_noise",
    "sine_wave",
    "sawtooth_wave",
    "square_wave",
    "linear_trend",
    "random_walk",
    "Anomaly",
    "level_shift",
    "transient_spike",
    "amplitude_change",
    "frequency_change",
    "SignalSpec",
    "compose",
]


def rng_from(seed) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# -- primitive signals ------------------------------------------------------


def white_noise(n: int, sigma: float = 1.0, seed=0) -> np.ndarray:
    """IID Gaussian noise with standard deviation *sigma* (kurtosis 3)."""
    return rng_from(seed).normal(0.0, sigma, size=n)


def laplace_noise(n: int, scale: float = 1.0, seed=0) -> np.ndarray:
    """IID Laplace noise (kurtosis 6) — the heavy-tailed example of Fig. 5."""
    return rng_from(seed).laplace(0.0, scale, size=n)


def uniform_noise(n: int, half_width: float = 1.0, seed=0) -> np.ndarray:
    """IID uniform noise on [-half_width, half_width] (kurtosis 1.8)."""
    return rng_from(seed).uniform(-half_width, half_width, size=n)


def sine_wave(n: int, period: float, amplitude: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """A sinusoid with the given period in samples."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    t = np.arange(n, dtype=np.float64)
    return amplitude * np.sin(2.0 * np.pi * t / period + phase)


def sawtooth_wave(n: int, period: float, amplitude: float = 1.0) -> np.ndarray:
    """A sawtooth ramping from -amplitude to +amplitude each period."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    t = np.arange(n, dtype=np.float64)
    frac = np.mod(t, period) / period
    return amplitude * (2.0 * frac - 1.0)


def square_wave(n: int, period: float, amplitude: float = 1.0) -> np.ndarray:
    """A square wave alternating +/- amplitude each half period."""
    return amplitude * np.sign(sine_wave(n, period) + 1e-12)


def linear_trend(n: int, slope: float, intercept: float = 0.0) -> np.ndarray:
    """A straight line — roughness zero by construction (Figure 4, series C)."""
    return intercept + slope * np.arange(n, dtype=np.float64)


def random_walk(n: int, step_sigma: float = 1.0, seed=0) -> np.ndarray:
    """Cumulative sum of Gaussian steps — strongly autocorrelated."""
    steps = rng_from(seed).normal(0.0, step_sigma, size=n)
    return np.cumsum(steps)


# -- anomaly injections -----------------------------------------------------


@dataclass(frozen=True)
class Anomaly:
    """A ground-truth anomalous region ``[start, end)`` in sample indices.

    The user-study harness (Section 5.1) asks the simulated observer to find
    this region among five equal-width candidate regions of the plot.
    """

    start: int
    end: int
    kind: str = "anomaly"

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid anomaly range [{self.start}, {self.end})")

    @property
    def center(self) -> float:
        return (self.start + self.end) / 2.0

    def region_index(self, n: int, regions: int = 5) -> int:
        """Which of *regions* equal slices of a length-*n* plot contains us."""
        if n <= 0:
            raise ValueError("series length must be positive")
        idx = int(self.center / n * regions)
        return min(max(idx, 0), regions - 1)


def level_shift(values: np.ndarray, start: int, end: int, delta: float) -> np.ndarray:
    """Add a sustained offset on ``[start, end)`` — e.g. the Thanksgiving dip."""
    out = np.array(values, dtype=np.float64)
    out[start:end] += delta
    return out


def transient_spike(values: np.ndarray, at: int, magnitude: float, width: int = 1) -> np.ndarray:
    """Add a short spike of the given width centered at *at*."""
    out = np.array(values, dtype=np.float64)
    lo = max(at - width // 2, 0)
    hi = min(lo + width, out.size)
    out[lo:hi] += magnitude
    return out


def amplitude_change(
    values: np.ndarray, start: int, end: int, factor: float
) -> np.ndarray:
    """Scale the signal on ``[start, end)`` — e.g. a taller sine peak."""
    out = np.array(values, dtype=np.float64)
    out[start:end] *= factor
    return out


def frequency_change(
    n: int, period: float, start: int, end: int, period_factor: float, amplitude: float = 1.0
) -> np.ndarray:
    """A sinusoid whose period is multiplied by *period_factor* on a region.

    Reconstructs the paper's Sine dataset: "a simulated noisy sine wave with a
    small region where the period is halved" (Section 5.1.2), using a
    phase-continuous sweep so the anomaly is a frequency change rather than a
    jump discontinuity.
    """
    if period <= 0 or period_factor <= 0:
        raise ValueError("period and period_factor must be positive")
    inst_period = np.full(n, period, dtype=np.float64)
    inst_period[start:end] = period * period_factor
    phase = np.cumsum(2.0 * np.pi / inst_period)
    return amplitude * np.sin(phase)


# -- composition ------------------------------------------------------------


@dataclass
class SignalSpec:
    """Declarative recipe for a composite synthetic series.

    Components are summed; anomalies are applied in order afterwards.  Used by
    the dataset reconstructions so each trace documents its own structure.
    """

    n: int
    components: Sequence[Callable[[int], np.ndarray]] = field(default_factory=list)
    anomalies: Sequence[tuple[Callable[[np.ndarray], np.ndarray], Anomaly]] = field(
        default_factory=list
    )
    name: str = ""

    def build(self) -> tuple[TimeSeries, list[Anomaly]]:
        """Realize the recipe into a series plus its ground-truth anomalies."""
        total = np.zeros(self.n, dtype=np.float64)
        for component in self.components:
            part = np.asarray(component(self.n), dtype=np.float64)
            if part.shape != total.shape:
                raise ValueError(
                    f"component produced shape {part.shape}, expected ({self.n},)"
                )
            total = total + part
        marks: list[Anomaly] = []
        for apply_fn, anomaly in self.anomalies:
            total = apply_fn(total)
            marks.append(anomaly)
        return TimeSeries(total, name=self.name), marks


def compose(n: int, *components: Callable[[int], np.ndarray], name: str = "") -> TimeSeries:
    """Sum independent components into one series (no anomalies)."""
    series, _ = SignalSpec(n=n, components=list(components), name=name).build()
    return series
