"""Reading and writing time series.

ASAP is a modular operator that "can ingest and process raw data from time
series databases such as InfluxDB, as well as from visualization clients"
(Section 2).  This module provides the plain-text interchange formats a
downstream user needs to get data in and out: two-column CSV and line-JSON,
both with timestamps.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .series import TimeSeries

__all__ = ["read_csv", "write_csv", "read_jsonl", "write_jsonl"]


def read_csv(path, has_header: bool = True, name: str = "") -> TimeSeries:
    """Read a ``timestamp,value`` CSV file into a :class:`TimeSeries`.

    Single-column files are interpreted as values with implicit timestamps.
    """
    path = Path(path)
    timestamps: list[float] = []
    values: list[float] = []
    single_column = False
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = iter(reader)
        if has_header:
            next(rows, None)
        for row in rows:
            if not row:
                continue
            if len(row) == 1:
                single_column = True
                values.append(float(row[0]))
            else:
                timestamps.append(float(row[0]))
                values.append(float(row[1]))
    if single_column or not timestamps:
        return TimeSeries(values, name=name or path.stem)
    return TimeSeries(values, timestamps, name=name or path.stem)


def write_csv(series: TimeSeries, path) -> None:
    """Write a series as ``timestamp,value`` CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for timestamp, value in series:
            writer.writerow([repr(timestamp), repr(value)])


def read_jsonl(path, name: str = "") -> TimeSeries:
    """Read line-delimited JSON objects ``{"t": ..., "v": ...}``."""
    path = Path(path)
    timestamps: list[float] = []
    values: list[float] = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            timestamps.append(float(record["t"]))
            values.append(float(record["v"]))
    return TimeSeries(values, timestamps, name=name or path.stem)


def write_jsonl(series: TimeSeries, path) -> None:
    """Write a series as line-delimited ``{"t": ..., "v": ...}`` objects."""
    path = Path(path)
    with path.open("w") as handle:
        for timestamp, value in series:
            handle.write(json.dumps({"t": timestamp, "v": value}))
            handle.write("\n")
