"""Reading and writing time series.

ASAP is a modular operator that "can ingest and process raw data from time
series databases such as InfluxDB, as well as from visualization clients"
(Section 2).  This module provides the plain-text interchange formats a
downstream user needs to get data in and out: two-column CSV and line-JSON,
both with timestamps.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .series import TimeSeries

__all__ = ["read_csv", "write_csv", "read_jsonl", "write_jsonl"]


def read_csv(path, has_header: bool = True, name: str = "") -> TimeSeries:
    """Read a ``timestamp,value`` CSV file into a :class:`TimeSeries`.

    Single-column files are interpreted as values with implicit timestamps.
    """
    path = Path(path)
    timestamps: list[float] = []
    values: list[float] = []
    single_column = False
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = iter(reader)
        if has_header:
            next(rows, None)
        for row in rows:
            if not row:
                continue
            if len(row) == 1:
                single_column = True
                values.append(float(row[0]))
            else:
                timestamps.append(float(row[0]))
                values.append(float(row[1]))
    if single_column or not timestamps:
        return TimeSeries(values, name=name or path.stem)
    return TimeSeries(values, timestamps, name=name or path.stem)


def write_csv(series: TimeSeries, path) -> None:
    """Write a series as ``timestamp,value`` CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for timestamp, value in series:
            writer.writerow([repr(timestamp), repr(value)])


def read_jsonl(path, name: str = "") -> TimeSeries:
    """Read line-delimited JSON objects ``{"t": ..., "v": ...}``.

    Malformed rows — invalid JSON, a non-object row, a missing ``t``/``v``
    field, or a non-numeric field — raise :class:`ValueError` naming the
    file and 1-based line number, so a bad record in a million-line export
    is findable instead of surfacing as a bare ``KeyError``.  Values written
    by :func:`write_jsonl` round-trip exactly (:mod:`json` serializes floats
    at shortest-repr precision), including non-finite values via JSON's
    ``NaN``/``Infinity`` extension — though a series containing them will
    then be rejected by :class:`TimeSeries` itself, which requires finite
    values.
    """
    path = Path(path)
    timestamps: list[float] = []
    values: list[float] = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc.msg}") from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected an object with 't' and 'v' "
                    f"fields, got {type(record).__name__}"
                )
            try:
                timestamp, value = record["t"], record["v"]
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{lineno}: record is missing the {exc.args[0]!r} field"
                ) from exc
            for field, raw in (("t", timestamp), ("v", value)):
                # float() would happily coerce booleans and numeric strings
                # (producer type bugs); only JSON numbers are acceptable.
                if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                    raise ValueError(
                        f"{path}:{lineno}: non-numeric {field!r} field: "
                        f"{raw!r} ({type(raw).__name__})"
                    )
            timestamps.append(float(timestamp))
            values.append(float(value))
    return TimeSeries(values, timestamps, name=name or path.stem)


def write_jsonl(series: TimeSeries, path) -> None:
    """Write a series as line-delimited ``{"t": ..., "v": ...}`` objects."""
    path = Path(path)
    with path.open("w") as handle:
        for timestamp, value in series:
            handle.write(json.dumps({"t": timestamp, "v": value}))
            handle.write("\n")
