"""Synthetic reconstructions of the paper's evaluation datasets (Table 2).

The paper evaluates on eleven public traces (NAB, UCI, TSDL, Keogh).  This
reproduction has no network access, so each trace is rebuilt as a synthetic
series that matches the properties ASAP's behaviour actually depends on:

* **length and cadence** — identical point counts to Table 2;
* **dominant period(s)** — daily/weekly/annual/heartbeat structure in samples;
* **anomaly type and location** — sustained dips, single abnormal days,
  frequency changes, extreme transient spikes — retained as ground truth for
  the user-study harness;
* **tail behaviour** — e.g. Twitter AAPL is rebuilt with extreme spikes so its
  kurtosis is high enough that ASAP correctly refuses to smooth it (window 1).

Every loader is deterministic (fixed seed per dataset) and accepts a
``scale`` factor that shrinks the point count while keeping periods fixed, so
unit tests can exercise the same structure at a fraction of the cost.

The window sizes recorded from the paper's Table 2 are carried in
:class:`DatasetInfo` so EXPERIMENTS.md can print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .generators import (
    Anomaly,
    frequency_change,
    level_shift,
    linear_trend,
    random_walk,
    rng_from,
    sine_wave,
    transient_spike,
    white_noise,
)
from .series import TimeSeries

__all__ = [
    "Dataset",
    "DatasetInfo",
    "available",
    "load",
    "load_many",
    "USER_STUDY_DATASETS",
    "PERFORMANCE_DATASETS",
    "LARGE_DATASETS",
]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata mirroring a row of the paper's Table 2."""

    name: str
    description: str
    n_points: int
    duration: str
    period: int | None
    paper_window: int
    paper_candidates_exhaustive: int
    paper_candidates_asap: int


@dataclass(frozen=True)
class Dataset:
    """A reconstructed trace: the series, its ground truth, and its metadata."""

    series: TimeSeries
    anomalies: tuple[Anomaly, ...]
    info: DatasetInfo

    def __len__(self) -> int:
        return len(self.series)


def _scaled(n: int, scale: float) -> int:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(int(round(n * scale)), 16)


# -- individual reconstructions ---------------------------------------------
#
# Each builder returns (values, anomalies) for a target length n.  Periods are
# expressed in samples and kept constant under scaling; anomaly positions are
# expressed as fractions of the series so they survive scaling.


def _build_taxi(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # NYC taxi passengers, 30-minute buckets: 48/day, 336/week.  Sustained
    # week-long Thanksgiving dip roughly two thirds of the way through the
    # 75-day trace (kept clear of plot-region boundaries).
    daily, weekly = 48, 336
    rng = rng_from(seed)
    values = (
        4.0
        + sine_wave(n, daily, amplitude=1.0, phase=-np.pi / 2)
        + sine_wave(n, weekly, amplitude=0.35)
        + white_noise(n, sigma=0.25, seed=rng)
    )
    start = int(0.66 * n)
    end = min(start + 7 * daily, n)
    values = level_shift(values, start, end, -1.4)
    return values, [Anomaly(start, end, kind="sustained dip")]


def _build_temp(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # Monthly temperature in England, 1723-1970: annual period 12 with a
    # warming trend over roughly the last fifth of the record.
    annual = 12
    rng = rng_from(seed)
    # Decadal variability (NAO-style): slow wandering that a ~20-year ASAP
    # average keeps visible but a ~60-year oversmoothed average removes —
    # the reason the paper's users preferred the oversmoothed Temp plot.
    n_ctrl = max(n // 60, 8)  # ~5-year knots
    knots = rng_from(seed + 1).normal(0.0, 0.9, size=n_ctrl)
    decadal = np.interp(
        np.linspace(0.0, n_ctrl - 1, n), np.arange(n_ctrl, dtype=np.float64), knots
    )
    values = (
        9.0
        + sine_wave(n, annual, amplitude=5.5, phase=-np.pi / 2)
        + decadal
        + white_noise(n, sigma=1.2, seed=rng)
    )
    warm_start = int(0.8 * n)
    ramp = np.zeros(n)
    ramp[warm_start:] = linear_trend(n - warm_start, slope=2.8 / max(n - warm_start, 1))
    return values + ramp, [Anomaly(warm_start, n, kind="warming trend")]


def _build_sine(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # Keogh's noisy sine: one region where the period is halved.  The
    # anomalous cycles are distorted asymmetrically (clipped troughs), so
    # their windowed mean departs from zero — a pure frequency change would
    # integrate to zero under any period-multiple window and be invisible to
    # *every* smoother, which is not how the original trace behaves.
    period = 32
    start, end = int(0.5 * n), int(0.5 * n) + 2 * period
    end = min(end, n)
    rng = rng_from(seed)
    values = frequency_change(n, period, start, end, period_factor=0.5)
    values[start:end] = np.maximum(values[start:end], -0.25)
    values = values + white_noise(n, sigma=0.25, seed=rng)
    return values, [Anomaly(start, end, kind="halved period")]


def _ecg_beat(length: int) -> np.ndarray:
    """One stylized heartbeat: P wave, QRS complex, T wave as Gaussian bumps."""
    t = np.linspace(0.0, 1.0, length, endpoint=False)

    def bump(center: float, width: float, height: float) -> np.ndarray:
        return height * np.exp(-0.5 * ((t - center) / width) ** 2)

    return (
        bump(0.18, 0.025, 0.25)  # P
        - bump(0.36, 0.01, 0.3)  # Q
        + bump(0.40, 0.012, 2.2)  # R
        - bump(0.44, 0.01, 0.5)  # S
        + bump(0.68, 0.05, 0.5)  # T
    )


def _build_eeg(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # 250 Hz ECG excerpt with one premature ventricular contraction: an early,
    # wide, high-amplitude beat around 62% of the trace.
    beat_len = 200  # 75 bpm at 250 Hz
    beats = int(np.ceil(n / beat_len)) + 1
    normal = np.tile(_ecg_beat(beat_len), beats)[:n]
    rng = rng_from(seed)
    values = normal + white_noise(n, sigma=0.08, seed=rng)
    at = int(0.62 * n)
    episode = min(3 * beat_len, n - at)
    if episode > 0:
        # The ectopic beat: inverted, broad, high-amplitude complex ...
        pvc_width = min(beat_len, episode)
        values[at : at + pvc_width] += 2.5 * _ecg_beat(pvc_width)[::-1]
        # ... followed by a compensatory pause: suppressed beats and an
        # ST-level excursion, the part that survives pixel aggregation.
        t_ep = np.linspace(0.0, 1.0, episode, endpoint=False)
        values[at : at + episode] -= normal[at : at + episode] * 0.7
        values[at : at + episode] += 1.2 * np.exp(-0.5 * ((t_ep - 0.4) / 0.25) ** 2)
    return values, [Anomaly(at, at + max(episode, 1), kind="PVC episode")]


def _build_power(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # Dutch research facility power demand, 15-minute readings over a year:
    # daily period 96, strong weekday/weekend alternation (weekly period 672),
    # with a holiday dip (Ascension Thursday) ~40% into the year.
    daily, weekly = 96, 672
    rng = rng_from(seed)
    t = np.arange(n)
    day_phase = np.mod(t, daily) / daily
    workday_shape = np.clip(np.sin(np.pi * (day_phase - 0.3) / 0.45), 0.0, None)
    weekday = np.mod(t // daily, 7) < 5
    values = (
        1.0
        + 2.2 * workday_shape * weekday
        + 0.1 * sine_wave(n, weekly)
        + white_noise(n, sigma=0.18, seed=rng)
    )
    start = int(0.50 * n)
    start -= int(np.mod(start, daily))  # align the holiday to a day boundary
    end = min(start + daily, n)
    values[start:end] = (
        1.0 + white_noise(end - start, sigma=0.18, seed=rng_from(seed + 1))
    )
    return values, [Anomaly(start, end, kind="holiday dip")]


def _build_traffic(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # CityBench vehicle counts, ~5-minute readings over 4 months: daily 288
    # with rush-hour double peak and weekly modulation.  Performance-only
    # dataset; no ground-truth anomaly.
    daily, weekly = 288, 2016
    rng = rng_from(seed)
    t = np.arange(n)
    day_phase = np.mod(t, daily) / daily
    morning = np.exp(-0.5 * ((day_phase - 0.33) / 0.06) ** 2)
    evening = np.exp(-0.5 * ((day_phase - 0.72) / 0.08) ** 2)
    weekday = np.mod(t // daily, 7) < 5
    values = (
        2.0
        + (2.5 * morning + 2.0 * evening) * (0.6 + 0.4 * weekday)
        + 0.2 * sine_wave(n, weekly)
        + white_noise(n, sigma=0.35, seed=rng)
    )
    return values, []


def _build_machine_temp(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # NAB machine temperature, 5-minute readings over 70 days: drifting
    # baseline, mild daily cycle, a planned shutdown dip mid-series and a
    # catastrophic failure drop near the end.
    daily = 288
    rng = rng_from(seed)
    drift = random_walk(n, step_sigma=0.02, seed=rng)
    drift -= np.linspace(0.0, drift[-1], n)  # pin endpoints so drift stays bounded
    values = (
        85.0
        + drift
        + sine_wave(n, daily, amplitude=1.0)
        + white_noise(n, sigma=1.2, seed=rng_from(seed + 1))
    )
    shutdown_start = int(0.25 * n)
    shutdown_end = min(shutdown_start + daily // 2, n)
    values = level_shift(values, shutdown_start, shutdown_end, -12.0)
    failure_start = int(0.9 * n)
    failure_end = min(failure_start + 2 * daily, n)
    values = level_shift(values, failure_start, failure_end, -18.0)
    return values, [
        Anomaly(shutdown_start, shutdown_end, kind="planned shutdown"),
        Anomaly(failure_start, failure_end, kind="system failure"),
    ]


def _build_twitter_aapl(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # NAB Twitter mentions of Apple: a low, right-skewed baseline punctuated by
    # a handful of extreme spikes (product events).  The resulting kurtosis is
    # far above 3, so ASAP must leave the series unsmoothed (Table 2 window 1).
    rng = rng_from(seed)
    baseline = 50.0 + 10.0 * np.abs(rng.standard_normal(n))
    values = baseline + white_noise(n, sigma=4.0, seed=rng_from(seed + 1))
    anomalies: list[Anomaly] = []
    for frac, magnitude in ((0.22, 2500.0), (0.48, 5200.0), (0.49, 3100.0), (0.81, 1900.0)):
        at = int(frac * n)
        width = max(n // 800, 1)
        values = transient_spike(values, at, magnitude, width=width)
        anomalies.append(Anomaly(at, min(at + width, n), kind="mention spike"))
    return values, anomalies


def _build_ramp_traffic(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # Car count on an LA freeway on-ramp, 5-minute readings over a month:
    # daily period 288 dominated by commute peaks.
    daily = 288
    rng = rng_from(seed)
    t = np.arange(n)
    day_phase = np.mod(t, daily) / daily
    peak = np.exp(-0.5 * ((day_phase - 0.35) / 0.09) ** 2) + 0.8 * np.exp(
        -0.5 * ((day_phase - 0.7) / 0.1) ** 2
    )
    weekday = np.mod(t // daily, 7) < 5
    values = 1.0 + 3.0 * peak * (0.85 + 0.15 * weekday) + white_noise(n, sigma=0.3, seed=rng)
    return values, []


def _build_sim_daily(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # NAB "art daily": two weeks of a clean daily pattern (period 288) with a
    # single abnormal day (flatlined activity) ~70% through.
    daily = 288
    rng = rng_from(seed)
    t = np.arange(n)
    day_phase = np.mod(t, daily) / daily
    pattern = np.where((day_phase > 0.3) & (day_phase < 0.75), 4.0, 1.0)
    values = pattern + white_noise(n, sigma=0.25, seed=rng)
    start = int(0.7 * n)
    start -= int(np.mod(start, daily))
    end = min(start + daily, n)
    values[start:end] = 1.0 + white_noise(end - start, sigma=0.25, seed=rng_from(seed + 1))
    return values, [Anomaly(start, end, kind="abnormal day")]


def _build_gas_sensor(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # UCI chemical sensor under dynamic gas mixtures, ~100 Hz for 12 hours.
    # The rig switches concentration setpoints at quasi-regular intervals;
    # the sensor responds with first-order dynamics plus a transient
    # overshoot on each switch, under heavy measurement noise.  The switching
    # interval is what ASAP's ACF peak search finds (the paper's window 26 at
    # 1200px is about one switching period in pixel buckets); the overshoot
    # transients and a few wide excursions keep the aggregated tails heavy so
    # the kurtosis constraint caps the window near that period.
    rng = rng_from(seed)
    switch_period = max(n // 162, 4)  # ~26 pixel buckets at 1200px
    t = np.arange(n, dtype=np.float64)

    # Exponential response toward a fresh target after each switch, built at
    # control-point resolution for efficiency and interpolated up.
    n_ctrl = max(n // 1000, 16)
    ctrl_t = np.linspace(0.0, n - 1, n_ctrl)
    ctrl = np.empty(n_ctrl)
    tau = switch_period / 6.0
    targets = rng.normal(0.0, 2.0, size=int(np.ceil(n / switch_period)) + 1)
    level = 0.0
    last_switch = 0.0
    for i, time in enumerate(ctrl_t):
        segment = int(time // switch_period)
        seg_start = segment * switch_period
        if seg_start != last_switch:
            last_switch = seg_start
        elapsed = time - seg_start
        target = targets[segment]
        prev = targets[segment - 1] if segment > 0 else 0.0
        level = target + (prev - target) * np.exp(-elapsed / tau)
        ctrl[i] = level
    baseline = np.interp(t, ctrl_t, ctrl)

    # Overshoot transient on each switch: a brief spike past the new target.
    spikes = np.zeros(n)
    spike_width = max(switch_period / 5.0, 2.0)
    for segment in range(1, int(np.ceil(n / switch_period))):
        at = segment * switch_period
        if at >= n:
            break
        jump = targets[segment] - targets[segment - 1]
        spikes += 1.5 * jump * np.exp(-0.5 * ((t - at) / spike_width) ** 2)

    values = baseline + spikes + white_noise(n, sigma=0.5, seed=rng_from(seed + 1))
    for frac, magnitude, width_frac in (
        (0.30, 8.0, 0.008),
        (0.55, -7.0, 0.006),
        (0.80, 10.0, 0.008),
    ):
        center = frac * n
        width = max(width_frac * n, 1.0)
        values += magnitude * np.exp(-0.5 * ((t - center) / width) ** 2)
    return values, []


def _build_cpu_util(n: int, seed: int) -> tuple[np.ndarray, list[Anomaly]]:
    # Cluster CPU utilization, 5-minute averages over ten days (Figure 2): a
    # noisy plateau with a sustained usage spike near the end of the window.
    daily = 288
    rng = rng_from(seed)
    values = (
        35.0
        + 3.0 * sine_wave(n, daily)
        + white_noise(n, sigma=4.0, seed=rng)
    )
    start = int(0.92 * n)
    values = level_shift(values, start, n, 25.0)
    return values, [Anomaly(start, n, kind="usage spike")]


# -- registry ----------------------------------------------------------------

_Builder = Callable[[int, int], tuple[np.ndarray, list[Anomaly]]]

_REGISTRY: dict[str, tuple[_Builder, int, DatasetInfo]] = {}


def _register(
    name: str,
    builder: _Builder,
    seed: int,
    description: str,
    n_points: int,
    duration: str,
    period: int | None,
    paper_window: int,
    paper_candidates_exhaustive: int,
    paper_candidates_asap: int,
) -> None:
    info = DatasetInfo(
        name=name,
        description=description,
        n_points=n_points,
        duration=duration,
        period=period,
        paper_window=paper_window,
        paper_candidates_exhaustive=paper_candidates_exhaustive,
        paper_candidates_asap=paper_candidates_asap,
    )
    _REGISTRY[name] = (builder, seed, info)


_register("gas_sensor", _build_gas_sensor, 101,
          "Chemical sensor exposed to a gas mixture", 4_208_261, "12 hours",
          None, 26, 115, 7)
_register("eeg", _build_eeg, 102,
          "Excerpt of electrocardiogram", 45_000, "180 sec",
          200, 22, 119, 21)
_register("power", _build_power, 103,
          "Power consumption for a Dutch research facility in 1997", 35_040,
          "1 year", 96, 16, 115, 23)
_register("traffic_data", _build_traffic, 104,
          "Vehicle traffic observed between two points for 4 months", 32_075,
          "4 months", 288, 84, 120, 6)
_register("machine_temp", _build_machine_temp, 105,
          "Temperature of an internal component of an industrial machine",
          22_695, "70 days", 288, 44, 125, 7)
_register("twitter_aapl", _build_twitter_aapl, 106,
          "A collection of Twitter mentions of Apple", 15_902, "2 months",
          None, 1, 120, 7)
_register("ramp_traffic", _build_ramp_traffic, 107,
          "Car count on a freeway ramp in Los Angeles", 8_640, "1 month",
          288, 96, 117, 5)
_register("sim_daily", _build_sim_daily, 108,
          "Simulated two week data with one abnormal day", 4_033, "2 weeks",
          288, 72, 100, 5)
_register("taxi", _build_taxi, 109,
          "Number of NYC taxi passengers in 30 min bucket", 3_600, "75 days",
          48, 112, 120, 4)
_register("temp", _build_temp, 110,
          "Monthly temperature in England from 1723 to 1970", 2_976,
          "248 years", 12, 112, 120, 4)
_register("sine", _build_sine, 111,
          "Noisy sine wave with an anomaly that is half the usual period",
          800, "800 sec", 32, 64, 79, 6)
_register("cpu_util", _build_cpu_util, 112,
          "Server CPU usage across a cluster over ten days (Figure 2)", 2_880,
          "10 days", 288, 12, 0, 0)

#: The five datasets used in both user studies (Section 5.1).
USER_STUDY_DATASETS = ("taxi", "power", "sine", "eeg", "temp")

#: The seven largest datasets, used for the Figure 8/9 performance averages.
PERFORMANCE_DATASETS = (
    "gas_sensor", "eeg", "power", "traffic_data",
    "machine_temp", "twitter_aapl", "ramp_traffic",
)

#: Datasets above 1M points (generate lazily; prefer ``scale`` in tests).
LARGE_DATASETS = ("gas_sensor",)


def available() -> list[str]:
    """Names of every reconstructed dataset, in Table 2 order."""
    return list(_REGISTRY)


def load(name: str, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Load a reconstructed dataset.

    Parameters
    ----------
    name:
        One of :func:`available`.
    scale:
        Multiplier on the paper's point count (periods stay fixed, so
        structure is preserved).  Use small scales in unit tests.
    seed:
        Override the dataset's fixed seed, e.g. for robustness studies.
    """
    try:
        builder, default_seed, info = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available())}"
        ) from None
    n = _scaled(info.n_points, scale)
    values, anomalies = builder(n, default_seed if seed is None else seed)
    series = TimeSeries(values, name=name)
    return Dataset(series=series, anomalies=tuple(anomalies), info=info)


def load_many(names, scale: float = 1.0) -> list[Dataset]:
    """Load several datasets at a shared scale."""
    return [load(name, scale=scale) for name in names]
