"""Summary statistics for time series, implemented from first principles.

These are the statistical primitives the ASAP paper builds on (Section 3):
population moments, the first-difference series, z-score normalization, and
kurtosis as the *non-excess* fourth standardized moment (a normal distribution
scores 3.0).

All functions accept any one-dimensional array-like of floats and operate on
``numpy`` arrays internally.  Population (``ddof=0``) conventions are used
throughout because the paper treats a series window as a complete population
rather than a sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mean",
    "variance",
    "std",
    "kurtosis",
    "zscore",
    "first_differences",
    "roughness",
    "MomentSummary",
    "moment_summary",
]

_MIN_POINTS_FOR_DIFF = 2


def _as_float_array(values) -> np.ndarray:
    """Coerce *values* to a 1-D float64 array, validating dimensionality."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    return arr


def mean(values) -> float:
    """Arithmetic mean of the series."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("mean of an empty series is undefined")
    return float(arr.mean())


def variance(values) -> float:
    """Population variance (second central moment)."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("variance of an empty series is undefined")
    centered = arr - arr.mean()
    return float(np.mean(centered * centered))


def std(values) -> float:
    """Population standard deviation."""
    return float(np.sqrt(variance(values)))


def kurtosis(values) -> float:
    """Non-excess kurtosis: ``E[(X-mu)^4] / E[(X-mu)^2]^2``.

    This is the paper's preservation measure (Section 3.2).  A univariate
    normal distribution has kurtosis 3; heavier-tailed distributions (e.g.
    Laplace) score higher.  A constant series has zero variance, for which
    the ratio is undefined; following the convention of the reference
    implementation we return 0.0 so that a flat (fully smoothed) series never
    satisfies a ``>=`` kurtosis constraint against a non-degenerate original.
    """
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("kurtosis of an empty series is undefined")
    centered = arr - arr.mean()
    second = np.mean(centered * centered)
    if second == 0.0:
        return 0.0
    fourth = np.mean(centered ** 4)
    return float(fourth / (second * second))


def zscore(values) -> np.ndarray:
    """Standardize the series to zero mean and unit variance.

    The paper plots z-scores rather than raw values to normalize the visual
    field across datasets (Figure 1, footnote 1).  A constant series maps to
    all zeros rather than dividing by zero.
    """
    arr = _as_float_array(values)
    if arr.size == 0:
        return arr.copy()
    sigma = std(arr)
    if sigma == 0.0:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / sigma


def first_differences(values) -> np.ndarray:
    """The first-difference series ``delta_x_i = x_{i+1} - x_i``.

    Requires at least two points; a series with fewer points has no
    differences to take.
    """
    arr = _as_float_array(values)
    if arr.size < _MIN_POINTS_FOR_DIFF:
        raise ValueError(
            f"first differences need >= {_MIN_POINTS_FOR_DIFF} points, got {arr.size}"
        )
    return np.diff(arr)


def roughness(values) -> float:
    """Roughness: population standard deviation of the first differences.

    The paper's smoothness objective (Section 3.1).  Zero if and only if the
    plot is a straight line (constant slope).  Singleton series are treated as
    perfectly smooth.
    """
    arr = _as_float_array(values)
    if arr.size < _MIN_POINTS_FOR_DIFF:
        return 0.0
    return std(np.diff(arr))


@dataclass(frozen=True)
class MomentSummary:
    """All the per-series statistics the ASAP search consumes, in one pass."""

    count: int
    mean: float
    variance: float
    std: float
    kurtosis: float
    roughness: float


def moment_summary(values) -> MomentSummary:
    """Compute every moment the search needs from a single array scan."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    mu = float(arr.mean())
    centered = arr - mu
    second = float(np.mean(centered * centered))
    if second == 0.0:
        kurt = 0.0
    else:
        kurt = float(np.mean(centered ** 4) / (second * second))
    return MomentSummary(
        count=int(arr.size),
        mean=mu,
        variance=second,
        std=float(np.sqrt(second)),
        kurtosis=kurt,
        roughness=roughness(arr),
    )
