"""Summary statistics for time series, implemented from first principles.

These are the statistical primitives the ASAP paper builds on (Section 3):
population moments, the first-difference series, z-score normalization, and
kurtosis as the *non-excess* fourth standardized moment (a normal distribution
scores 3.0).

All functions accept any one-dimensional array-like of floats and operate on
``numpy`` arrays internally.  Population (``ddof=0``) conventions are used
throughout because the paper treats a series window as a complete population
rather than a sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mean",
    "variance",
    "std",
    "kurtosis",
    "zscore",
    "first_differences",
    "roughness",
    "rolling_kurtosis",
    "rolling_roughness",
    "MomentSummary",
    "moment_summary",
]

_MIN_POINTS_FOR_DIFF = 2


def _as_float_array(values) -> np.ndarray:
    """Coerce *values* to a 1-D float64 array, validating dimensionality."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    return arr


def mean(values) -> float:
    """Arithmetic mean of the series."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("mean of an empty series is undefined")
    return float(arr.mean())


def variance(values) -> float:
    """Population variance (second central moment)."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("variance of an empty series is undefined")
    centered = arr - arr.mean()
    return float(np.mean(centered * centered))


def std(values) -> float:
    """Population standard deviation."""
    return float(np.sqrt(variance(values)))


def kurtosis(values) -> float:
    """Non-excess kurtosis: ``E[(X-mu)^4] / E[(X-mu)^2]^2``.

    This is the paper's preservation measure (Section 3.2).  A univariate
    normal distribution has kurtosis 3; heavier-tailed distributions (e.g.
    Laplace) score higher.  A constant series has zero variance, for which
    the ratio is undefined; following the convention of the reference
    implementation we return 0.0 so that a flat (fully smoothed) series never
    satisfies a ``>=`` kurtosis constraint against a non-degenerate original.
    """
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("kurtosis of an empty series is undefined")
    centered = arr - arr.mean()
    second = np.mean(centered * centered)
    if second == 0.0:
        return 0.0
    fourth = np.mean(centered ** 4)
    return float(fourth / (second * second))


def zscore(values) -> np.ndarray:
    """Standardize the series to zero mean and unit variance.

    The paper plots z-scores rather than raw values to normalize the visual
    field across datasets (Figure 1, footnote 1).  A constant series maps to
    all zeros rather than dividing by zero.
    """
    arr = _as_float_array(values)
    if arr.size == 0:
        return arr.copy()
    sigma = std(arr)
    if sigma == 0.0:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / sigma


def first_differences(values) -> np.ndarray:
    """The first-difference series ``delta_x_i = x_{i+1} - x_i``.

    Requires at least two points; a series with fewer points has no
    differences to take.
    """
    arr = _as_float_array(values)
    if arr.size < _MIN_POINTS_FOR_DIFF:
        raise ValueError(
            f"first differences need >= {_MIN_POINTS_FOR_DIFF} points, got {arr.size}"
        )
    return np.diff(arr)


def roughness(values) -> float:
    """Roughness: population standard deviation of the first differences.

    The paper's smoothness objective (Section 3.1).  Zero if and only if the
    plot is a straight line (constant slope).  Singleton series are treated as
    perfectly smooth.
    """
    arr = _as_float_array(values)
    if arr.size < _MIN_POINTS_FOR_DIFF:
        return 0.0
    return std(np.diff(arr))


#: Safety margin between the eps-scale error bound of the prefix-stack moment
#: expansion and a window moment we are willing to trust.  Windows below the
#: margin are recomputed exactly; the survivors carry relative error around
#: ``1 / margin`` of their own magnitude — comfortably beyond 1e-9.
_ROLLING_REFINE_MARGIN = 1e10


def _windowed_rows(arr: np.ndarray, starts: np.ndarray, window: int) -> np.ndarray:
    """Gather the flagged windows as rows of a ``(len(starts), window)`` array."""
    return arr[starts[:, np.newaxis] + np.arange(window)[np.newaxis, :]]


def _rolling_variance(arr: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Centered second moment of every sliding window, plus a refinement mask.

    Fast path: prefix-sum stacks of the globally centered series (central
    moments are shift-invariant), giving every window's variance in O(n).
    The raw-moment expansion leaves a cancellation residue on the order of
    ``eps * n * E[x^2]``; windows whose variance is not safely above that
    bound are flagged for exact recomputation.
    """
    from ..spectral.convolution import prefix_moment_stack, windowed_moment_sums

    centered = arr - arr.mean()
    stack = prefix_moment_stack(centered, max_power=2)
    sums = windowed_moment_sums(stack, window)
    count = float(window)
    n = float(arr.size)
    m1 = sums[0] / count
    raw2 = sums[1] / count
    second = np.maximum(raw2 - m1 * m1, 0.0)
    # Prefix sums of centered data drift like a random walk, so the
    # accumulated rounding error scales with sqrt(n), not n.
    err2 = np.finfo(np.float64).eps * np.sqrt(n) * (stack[1, -1] / n)
    flagged = second <= err2 * _ROLLING_REFINE_MARGIN
    return second, flagged


def rolling_kurtosis(values, window: int) -> np.ndarray:
    """Non-excess kurtosis of every sliding window of *window* points.

    ``out[i] == kurtosis(values[i : i + window])`` for every full window.
    Computed in O(n) from the prefix-sum moment stacks of
    :mod:`repro.spectral.convolution` rather than O(n * window) rescans;
    windows the expansion cannot resolve accurately (near-constant content)
    are recomputed with the scalar algorithm, vectorized over the flagged
    rows, so results agree with :func:`kurtosis` everywhere — including the
    zero-variance convention of returning 0.0.
    """
    from ..spectral.convolution import prefix_moment_stack, windowed_moment_sums

    arr = _as_float_array(values)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window} (series length {arr.size})")
    if window > arr.size:
        raise ValueError(f"window {window} exceeds series length {arr.size}")
    n_out = arr.size - window + 1
    if window == 1:
        # Single-point windows have zero variance, hence kurtosis 0.0.
        return np.zeros(n_out, dtype=np.float64)

    centered_global = arr - arr.mean()
    stack = prefix_moment_stack(centered_global, max_power=4)
    sums = windowed_moment_sums(stack, window)
    count = float(window)
    n = float(arr.size)
    m1 = sums[0] / count
    raw2 = sums[1] / count
    raw3 = sums[2] / count
    raw4 = sums[3] / count
    second = np.maximum(raw2 - m1 * m1, 0.0)
    fourth = np.maximum(
        raw4 - 4.0 * m1 * raw3 + 6.0 * m1 * m1 * raw2 - 3.0 * m1 ** 4, 0.0
    )
    # The expansions accumulate error on the order of eps * sqrt(n) times the
    # global moment scale (prefix sums of centered data drift like a random
    # walk); any window moment not safely above that bound is recomputed
    # exactly.
    eps_n = np.finfo(np.float64).eps * np.sqrt(n)
    global2 = stack[1, -1] / n
    global4 = stack[3, -1] / n
    global3 = np.sqrt(global2 * global4)
    abs_m1 = np.abs(m1)
    err2 = eps_n * global2
    err4 = eps_n * (
        global4
        + 4.0 * abs_m1 * global3
        + 6.0 * m1 * m1 * global2
        + 3.0 * m1 ** 4
    )
    flagged = (second <= err2 * _ROLLING_REFINE_MARGIN) | (
        fourth <= err4 * _ROLLING_REFINE_MARGIN
    )
    safe = np.where(flagged, 1.0, second)
    out = np.where(flagged, 0.0, fourth / (safe * safe))

    starts = np.flatnonzero(flagged)
    if starts.size:
        rows = _windowed_rows(arr, starts, window)
        row_centered = rows - rows.mean(axis=1, keepdims=True)
        row_second = np.mean(row_centered * row_centered, axis=1)
        row_fourth = np.mean(row_centered ** 4, axis=1)
        nonzero = row_second != 0.0
        row_safe = np.where(nonzero, row_second, 1.0)
        out[starts] = np.where(nonzero, row_fourth / (row_safe * row_safe), 0.0)
    return out


def rolling_roughness(values, window: int) -> np.ndarray:
    """Roughness of every sliding window of *window* points.

    ``out[i] == roughness(values[i : i + window])``: the population standard
    deviation of the first differences *inside* each window, from the prefix
    stacks of the difference series in O(n) total.  Ill-conditioned windows
    (near-constant slope) are recomputed exactly like the flagged rows of
    :func:`rolling_kurtosis`; windows of fewer than two points are perfectly
    smooth (0.0), matching :func:`roughness`.
    """
    arr = _as_float_array(values)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window} (series length {arr.size})")
    if window > arr.size:
        raise ValueError(f"window {window} exceeds series length {arr.size}")
    if window < _MIN_POINTS_FOR_DIFF:
        return np.zeros(arr.size - window + 1, dtype=np.float64)
    diffs = np.diff(arr)
    variance_w, flagged = _rolling_variance(diffs, window - 1)
    out = np.sqrt(variance_w)

    starts = np.flatnonzero(flagged)
    if starts.size:
        rows = _windowed_rows(diffs, starts, window - 1)
        row_centered = rows - rows.mean(axis=1, keepdims=True)
        out[starts] = np.sqrt(np.mean(row_centered * row_centered, axis=1))
    return out


@dataclass(frozen=True)
class MomentSummary:
    """All the per-series statistics the ASAP search consumes, in one pass."""

    count: int
    mean: float
    variance: float
    std: float
    kurtosis: float
    roughness: float


def moment_summary(values) -> MomentSummary:
    """Compute every moment the search needs from a single array scan."""
    arr = _as_float_array(values)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    mu = float(arr.mean())
    centered = arr - mu
    second = float(np.mean(centered * centered))
    if second == 0.0:
        kurt = 0.0
    else:
        kurt = float(np.mean(centered ** 4) / (second * second))
    return MomentSummary(
        count=int(arr.size),
        mean=mu,
        variance=second,
        std=float(np.sqrt(second)),
        kurtosis=kurt,
        roughness=roughness(arr),
    )
