"""Stream-processing substrate: aggregates, panes, windows, operators, sources."""

from .aggregates import MinMaxAggregate, MomentSketch, SumAggregate
from .panes import Pane, PaneBuffer
from .windows import WindowSpec, iter_windows, slide_for_resolution, window_starts
from .operators import FilterOperator, MapOperator, Pipeline, StreamOperator, run_stream
from .sources import ChunkedReplaySource, ReplaySource, StreamPoint

__all__ = [
    "MinMaxAggregate",
    "MomentSketch",
    "SumAggregate",
    "Pane",
    "PaneBuffer",
    "WindowSpec",
    "iter_windows",
    "slide_for_resolution",
    "window_starts",
    "FilterOperator",
    "MapOperator",
    "Pipeline",
    "StreamOperator",
    "run_stream",
    "ChunkedReplaySource",
    "ReplaySource",
    "StreamPoint",
]
