"""Pane-based subaggregation for sliding windows.

Sliding-window aggregates "can be computed more efficiently by sub-aggregating
the incoming data into disjoint segments (i.e., panes)" (Section 4.5, citing
Li et al., "No pane, no gain").  Streaming ASAP maintains a linked list of
pane subaggregates whose size equals the point-to-pixel ratio: each pane
collapses ``pane_size`` raw arrivals into one aggregated point, and the
visible window is a bounded deque of completed panes.

:class:`PaneBuffer` is that structure.  It exposes the aggregated series (one
value per completed pane) for the search routine, evicts panes beyond the
configured capacity, and keeps per-pane :class:`MomentSketch` state so window
statistics remain available without raw data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .aggregates import MomentSketch

__all__ = ["Pane", "PaneBuffer"]


@dataclass
class Pane:
    """One disjoint segment of the stream, pre-aggregated to a single point."""

    start_time: float
    sketch: MomentSketch = field(default_factory=MomentSketch)

    def update(self, value: float) -> None:
        self.sketch.update(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def mean(self) -> float:
        if self.sketch.count == 0:
            raise ValueError("mean of an empty pane is undefined")
        return self.sketch.mean


class PaneBuffer:
    """Fixed-capacity ring of panes fed one raw point at a time.

    Parameters
    ----------
    pane_size:
        Raw points per pane — streaming ASAP sets this to the point-to-pixel
        ratio so each pane is one plotted point (Section 4.5).
    capacity:
        Maximum number of *completed* panes retained (the visualized window,
        e.g. the target resolution in pixels).  Older panes are evicted.
    """

    def __init__(self, pane_size: int, capacity: int) -> None:
        if pane_size < 1:
            raise ValueError(f"pane_size must be >= 1, got {pane_size}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.pane_size = pane_size
        self.capacity = capacity
        self._panes: deque[Pane] = deque()
        self._open: Pane | None = None
        self._total_points = 0
        self._evicted_panes = 0

    # -- ingest --------------------------------------------------------------

    def push(self, timestamp: float, value: float) -> Pane | None:
        """Fold one arrival in; return the pane it *completed*, if any."""
        if self._open is None:
            self._open = Pane(start_time=timestamp)
        self._open.update(value)
        self._total_points += 1
        if self._open.count >= self.pane_size:
            completed = self._open
            self._open = None
            self._panes.append(completed)
            if len(self._panes) > self.capacity:
                self._panes.popleft()
                self._evicted_panes += 1
            return completed
        return None

    def extend(self, timestamps, values) -> int:
        """Push a batch; return how many panes were completed."""
        completed = 0
        for timestamp, value in zip(timestamps, values):
            if self.push(float(timestamp), float(value)) is not None:
                completed += 1
        return completed

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._panes)

    @property
    def total_points(self) -> int:
        """Raw points ever pushed (including evicted and in-flight ones)."""
        return self._total_points

    @property
    def evicted_panes(self) -> int:
        """Completed panes dropped because the buffer exceeded capacity."""
        return self._evicted_panes

    def aggregated_values(self) -> np.ndarray:
        """Mean of each completed pane, oldest first — the search's input."""
        return np.asarray([pane.mean for pane in self._panes], dtype=np.float64)

    def aggregated_timestamps(self) -> np.ndarray:
        """Start timestamp of each completed pane."""
        return np.asarray([pane.start_time for pane in self._panes], dtype=np.float64)

    def window_sketch(self) -> MomentSketch:
        """Merged moments across every completed pane (raw-point statistics)."""
        merged = MomentSketch()
        for pane in self._panes:
            merged.merge(pane.sketch)
        return merged

    def clear(self) -> None:
        """Drop all state (e.g. when the visualized range changes)."""
        self._panes.clear()
        self._open = None
        self._total_points = 0
        self._evicted_panes = 0
