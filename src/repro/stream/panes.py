"""Pane-based subaggregation for sliding windows.

Sliding-window aggregates "can be computed more efficiently by sub-aggregating
the incoming data into disjoint segments (i.e., panes)" (Section 4.5, citing
Li et al., "No pane, no gain").  Streaming ASAP maintains a linked list of
pane subaggregates whose size equals the point-to-pixel ratio: each pane
collapses ``pane_size`` raw arrivals into one aggregated point, and the
visible window is a bounded deque of completed panes.

:class:`PaneBuffer` is that structure.  It exposes the aggregated series (one
value per completed pane) for the search routine, evicts panes beyond the
configured capacity, and keeps per-pane :class:`MomentSketch` state so window
statistics remain available without raw data.

Two serving-path refinements over the original per-point structure:

* completed-pane means and start timestamps are mirrored into contiguous
  rolling arrays, so :meth:`PaneBuffer.aggregated_values` is a memcpy of a
  slice instead of a Python iteration over the deque — the per-refresh read
  path of the streaming operator;
* :meth:`PaneBuffer.extend` folds whole panes with vectorized Welford updates
  (bit-identical to the per-point recurrence, candidate by candidate), so
  batch ingestion — the StreamHub hot path — costs O(pane_size) numpy passes
  per call instead of O(points) Python-level updates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .aggregates import MomentSketch

__all__ = ["Pane", "PaneBuffer", "DiscardedState", "RollingArray"]


@dataclass
class Pane:
    """One disjoint segment of the stream, pre-aggregated to a single point."""

    start_time: float
    sketch: MomentSketch = field(default_factory=MomentSketch)

    def update(self, value: float) -> None:
        self.sketch.update(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def mean(self) -> float:
        if self.sketch.count == 0:
            raise ValueError("mean of an empty pane is undefined")
        return self.sketch.mean


@dataclass(frozen=True)
class DiscardedState:
    """What a :meth:`PaneBuffer.reset` threw away — reset is explicit, not silent.

    ``open_pane_points``/``open_pane_start`` describe the trailing *partial*
    pane: points that were pushed but never completed a pane and therefore
    never appeared in :meth:`PaneBuffer.aggregated_values`.  Callers that
    re-use a buffer across ranges can use this to account for (or re-ingest)
    the dropped tail instead of losing it silently.
    """

    completed_panes: int
    evicted_panes: int
    total_points: int
    open_pane_points: int
    open_pane_start: float | None

    @property
    def dropped_partial_pane(self) -> bool:
        """True when a trailing partial pane (and its timestamps) was discarded."""
        return self.open_pane_points > 0


class RollingArray:
    """Contiguous sliding float64 storage with amortized O(1) append.

    Sized for roughly ``capacity + 1`` live values (one slot of slack for an
    append-then-evict sequence; bulk appends may briefly hold up to
    ``2 * capacity``).  The backing buffer is twice that size; when the write
    head reaches the end, the live span is shifted back to the front — at
    most one copy of ``capacity`` elements per ``capacity`` appends.
    ``view()`` is always a contiguous slice, so readers get memcpy
    performance and vectorized kernels can consume it directly.  Shared by
    :class:`PaneBuffer` (pane means/timestamps) and
    :class:`repro.core.streaming.RollingWindowState` (window values).
    """

    __slots__ = ("_buf", "_head", "_tail")

    def __init__(self, capacity: int) -> None:
        self._buf = np.empty(2 * (capacity + 1), dtype=np.float64)
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def _make_room(self, extra: int) -> None:
        if self._tail + extra <= self._buf.size:
            return
        length = self._tail - self._head
        if length + extra > self._buf.size:
            grown = np.empty(2 * (length + extra), dtype=np.float64)
            grown[:length] = self._buf[self._head : self._tail]
            self._buf = grown
        else:
            self._buf[:length] = self._buf[self._head : self._tail]
        self._head = 0
        self._tail = length

    def append(self, value: float) -> None:
        self._make_room(1)
        self._buf[self._tail] = value
        self._tail += 1

    def append_many(self, values: np.ndarray) -> None:
        self._make_room(values.size)
        self._buf[self._tail : self._tail + values.size] = values
        self._tail += values.size

    def popleft(self, count: int = 1) -> None:
        self._head += count

    def view(self) -> np.ndarray:
        """The live span (no copy); valid until the next append."""
        return self._buf[self._head : self._tail]

    def clear(self) -> None:
        self._head = 0
        self._tail = 0


def _bulk_welford_means(block: np.ndarray) -> np.ndarray:
    """Per-row Welford means of a ``(panes, pane_size)`` block.

    The mean recurrence of :meth:`MomentSketch.update` does not depend on the
    higher-moment state, so replaying just ``mean += delta / count`` column by
    column yields means bit-identical to the full sketch chain at a fraction
    of the work — the sketch-free fast path of batch ingestion.
    """
    n_panes, pane_size = block.shape
    mean = np.zeros(n_panes, dtype=np.float64)
    for j in range(pane_size):
        mean = mean + (block[:, j] - mean) / (j + 1)
    return mean


def _bulk_welford(block: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-row Welford/Terriberry moments of a ``(panes, pane_size)`` block.

    Replays :meth:`repro.stream.aggregates.MomentSketch.update` column by
    column with array operands, so every row's ``(mean, m2, m3, m4)`` is
    bit-identical to folding that row's values through a sketch one at a
    time — the property that keeps batch ingestion interchangeable with the
    per-point path.
    """
    n_panes, pane_size = block.shape
    mean = np.zeros(n_panes, dtype=np.float64)
    m2 = np.zeros(n_panes, dtype=np.float64)
    m3 = np.zeros(n_panes, dtype=np.float64)
    m4 = np.zeros(n_panes, dtype=np.float64)
    for j in range(pane_size):
        n1 = j
        count = j + 1
        delta = block[:, j] - mean
        delta_n = delta / count
        delta_n2 = delta_n * delta_n
        term1 = delta * delta_n * n1
        mean = mean + delta_n
        m4 = m4 + (
            term1 * delta_n2 * (count * count - 3 * count + 3)
            + 6.0 * delta_n2 * m2
            - 4.0 * delta_n * m3
        )
        m3 = m3 + (term1 * delta_n * (count - 2) - 3.0 * delta_n * m2)
        m2 = m2 + term1
    return mean, m2, m3, m4


class PaneBuffer:
    """Fixed-capacity ring of panes fed one raw point at a time.

    Parameters
    ----------
    pane_size:
        Raw points per pane — streaming ASAP sets this to the point-to-pixel
        ratio so each pane is one plotted point (Section 4.5).
    capacity:
        Maximum number of *completed* panes retained (the visualized window,
        e.g. the target resolution in pixels).  Older panes are evicted.
    journal:
        When True, the mean and start timestamp of every completed pane are
        additionally appended to a journal drained by
        :meth:`drain_completed` — the feed for incrementally maintained
        window statistics and for attached rollup pyramids (evictions need
        no journal entry: a consumer replaying appends against the same
        ``capacity`` reproduces the eviction order exactly).
    keep_sketches:
        When False, completed panes keep only their mean and start timestamp
        (no retained :class:`Pane`/:class:`MomentSketch` objects), which cuts
        batch-ingest cost roughly in half; :meth:`window_sketch` becomes
        unavailable.  Aggregated means are bit-identical either way — the
        Welford mean recurrence does not depend on the higher moments.
    track_quality:
        When True, the buffer keeps a per-pane count of *synthetic* points
        (gap fills marked by the quality stage via the ``synthetic``
        arguments of :meth:`push`/:meth:`extend`), so
        :attr:`window_synthetic_points` can report how much of the current
        window is filled rather than observed.  Aggregation is unaffected.

    Timestamp semantics: panes bucket by **arrival order** — a pane's
    ``start_time`` is simply the timestamp of its first arrival, duplicates
    and even non-monotonic timestamps included.  Callers that need
    out-of-order arrivals placed by *time* put a
    :class:`~repro.quality.ReorderBuffer` in front (the streaming operator's
    ``watermark`` knob); the buffer itself never reorders or mis-buckets.
    """

    def __init__(
        self,
        pane_size: int,
        capacity: int,
        journal: bool = False,
        keep_sketches: bool = True,
        track_quality: bool = False,
    ) -> None:
        if pane_size < 1:
            raise ValueError(f"pane_size must be >= 1, got {pane_size}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.pane_size = pane_size
        self.capacity = capacity
        self.journal = journal
        self.keep_sketches = keep_sketches
        self.track_quality = track_quality
        self._panes: deque[Pane] = deque()
        self._means = RollingArray(capacity)
        self._times = RollingArray(capacity)
        self._synth = RollingArray(capacity) if track_quality else None
        self._open_synth = 0
        self._open: Pane | None = None
        self._total_points = 0
        self._evicted_panes = 0
        self._pending_means: list[float] = []
        self._pending_times: list[float] = []

    # -- ingest --------------------------------------------------------------

    def _complete(self, pane: Pane) -> None:
        if self.keep_sketches:
            self._panes.append(pane)
        self._means.append(pane.mean)
        self._times.append(pane.start_time)
        if self._synth is not None:
            self._synth.append(float(self._open_synth))
            self._open_synth = 0
        if self.journal:
            self._pending_means.append(pane.mean)
            self._pending_times.append(pane.start_time)
        if len(self._means) > self.capacity:
            if self._panes:
                self._panes.popleft()
            self._means.popleft()
            self._times.popleft()
            if self._synth is not None:
                self._synth.popleft()
            self._evicted_panes += 1

    def push(self, timestamp: float, value: float, synthetic: bool = False) -> Pane | None:
        """Fold one arrival in; return the pane it *completed*, if any."""
        if self._open is None:
            self._open = Pane(start_time=timestamp)
        self._open.update(value)
        self._total_points += 1
        if synthetic and self._synth is not None:
            self._open_synth += 1
        if self._open.count >= self.pane_size:
            completed = self._open
            self._open = None
            self._complete(completed)
            return completed
        return None

    def extend(self, timestamps, values, synthetic=None) -> int:
        """Push a batch; return how many panes were completed.

        Whole panes are folded with vectorized Welford updates — bit-identical
        to pushing the same points one at a time — so batch ingestion costs
        O(pane_size) numpy passes instead of O(points) Python updates.  A
        trailing group smaller than ``pane_size`` stays in the open pane,
        exactly as with :meth:`push`; *timestamps* and *values* must have
        equal lengths (a mismatch raises instead of silently truncating).
        *synthetic* optionally marks fill points (a bool mask of the same
        length) for the per-pane quality tally (``track_quality=True``).
        """
        ts = np.asarray(timestamps, dtype=np.float64)
        vs = np.asarray(values, dtype=np.float64)
        if ts.ndim != 1 or vs.ndim != 1:
            raise ValueError(
                f"extend expects 1-D timestamps and values, got shapes {ts.shape} and {vs.shape}"
            )
        if ts.size != vs.size:
            raise ValueError(
                f"timestamps and values must have equal lengths, got {ts.size} and {vs.size}"
            )
        syn = None
        if synthetic is not None and self._synth is not None:
            syn = np.asarray(synthetic, dtype=bool)
            if syn.shape != vs.shape:
                raise ValueError(
                    f"synthetic mask must match values, got {syn.shape} and {vs.shape}"
                )
        completed = 0
        i = 0
        n = vs.size
        # Finish the currently open pane point by point (at most pane_size - 1
        # iterations), so the bulk phase starts on a pane boundary.
        while i < n and self._open is not None:
            if self.push(float(ts[i]), float(vs[i]), syn is not None and bool(syn[i])) is not None:
                completed += 1
            i += 1
        n_full = (n - i) // self.pane_size
        if n_full > self.capacity:
            # Backfill larger than the window: only the last `capacity` panes
            # can survive this call, so the leading panes are accounted as
            # completed-then-evicted without ever materializing retained
            # state — peak memory stays O(capacity), not O(batch).  Their
            # means still enter the journal (the journal is the replay log of
            # every completion).
            skipped = n_full - self.capacity
            skipped_span = skipped * self.pane_size
            if self.journal:
                block = vs[i : i + skipped_span].reshape(skipped, self.pane_size)
                self._pending_means.extend(_bulk_welford_means(block).tolist())
                self._pending_times.extend(
                    ts[i : i + skipped_span : self.pane_size].tolist()
                )
            self._evicted_panes += skipped + len(self._means)
            self._panes.clear()
            self._means.clear()
            self._times.clear()
            if self._synth is not None:
                self._synth.clear()
            self._total_points += skipped_span
            completed += skipped
            i += skipped_span
            n_full = self.capacity
        if n_full > 0:
            span = n_full * self.pane_size
            block = vs[i : i + span].reshape(n_full, self.pane_size)
            starts = np.array(ts[i : i + span : self.pane_size], dtype=np.float64)
            pane_size = self.pane_size
            if self.keep_sketches:
                mean, m2, m3, m4 = _bulk_welford(block)
                self._panes.extend(
                    Pane(
                        start_time=float(starts[p]),
                        sketch=MomentSketch(
                            count=pane_size,
                            mean=float(mean[p]),
                            m2=float(m2[p]),
                            m3=float(m3[p]),
                            m4=float(m4[p]),
                        ),
                    )
                    for p in range(n_full)
                )
            else:
                mean = _bulk_welford_means(block)
            self._means.append_many(mean)
            self._times.append_many(starts)
            if self._synth is not None:
                if syn is not None:
                    counts = (
                        syn[i : i + span]
                        .reshape(n_full, pane_size)
                        .sum(axis=1)
                        .astype(np.float64)
                    )
                else:
                    counts = np.zeros(n_full, dtype=np.float64)
                self._synth.append_many(counts)
            if self.journal:
                self._pending_means.extend(mean.tolist())
                self._pending_times.extend(starts.tolist())
            overflow = len(self._means) - self.capacity
            if overflow > 0:
                if overflow >= len(self._panes):
                    self._panes.clear()
                else:
                    for _ in range(overflow):
                        self._panes.popleft()
                self._means.popleft(overflow)
                self._times.popleft(overflow)
                if self._synth is not None:
                    self._synth.popleft(overflow)
                self._evicted_panes += overflow
            self._total_points += span
            completed += n_full
            i += span
        for j in range(i, n):
            if self.push(float(ts[j]), float(vs[j]), syn is not None and bool(syn[j])) is not None:
                completed += 1
        return completed

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._means)

    @property
    def total_points(self) -> int:
        """Raw points ever pushed (including evicted and in-flight ones)."""
        return self._total_points

    @property
    def evicted_panes(self) -> int:
        """Completed panes dropped because the buffer exceeded capacity."""
        return self._evicted_panes

    @property
    def panes_completed(self) -> int:
        """Panes ever completed (retained + evicted) — a monotone version
        counter for consumers caching derived state (e.g. pyramid views)."""
        return len(self._means) + self._evicted_panes

    @property
    def open_pane_points(self) -> int:
        """Points in the trailing partial pane (not yet aggregated)."""
        return self._open.count if self._open is not None else 0

    @property
    def open_pane_start(self) -> float | None:
        """Start timestamp of the trailing partial pane, if one is open."""
        return self._open.start_time if self._open is not None else None

    @property
    def window_synthetic_points(self) -> int:
        """Synthetic (gap-fill) points inside the completed-pane window.

        0 unless constructed with ``track_quality=True`` and fed a
        ``synthetic`` mask; the open partial pane is not counted (it is not
        part of the aggregated window either).
        """
        if self._synth is None:
            return 0
        return int(self._synth.view().sum())

    @property
    def window_completeness(self) -> float:
        """Fraction of the aggregated window built from observed points."""
        window_points = len(self._means) * self.pane_size
        if window_points == 0:
            return 1.0
        return 1.0 - self.window_synthetic_points / window_points

    def aggregated_values(self) -> np.ndarray:
        """Mean of each completed pane, oldest first — the search's input."""
        return self._means.view().copy()

    def aggregated_timestamps(self) -> np.ndarray:
        """Start timestamp of each completed pane."""
        return self._times.view().copy()

    def window_sketch(self) -> MomentSketch:
        """Merged moments across every completed pane (raw-point statistics)."""
        if not self.keep_sketches:
            raise ValueError("PaneBuffer was constructed with keep_sketches=False")
        merged = MomentSketch()
        for pane in self._panes:
            merged.merge(pane.sketch)
        return merged

    def drain_completed(self) -> tuple[np.ndarray, np.ndarray]:
        """Journaled ``(means, start timestamps)`` of panes completed since
        the last drain.

        Requires ``journal=True``; consumers replaying these appends against a
        window of the same ``capacity`` observe the exact append/evict order
        the buffer itself went through.  There is one journal: a drain hands
        the pending completions to its caller, who is responsible for feeding
        every downstream consumer (the streaming operator fans one drain out
        to the rolling statistics and the attached pyramid).
        """
        if not self.journal:
            raise ValueError("PaneBuffer was constructed with journal=False")
        means = np.asarray(self._pending_means, dtype=np.float64)
        times = np.asarray(self._pending_times, dtype=np.float64)
        self._pending_means = []
        self._pending_times = []
        return means, times

    def drain_completed_means(self) -> np.ndarray:
        """Journaled means only; see :meth:`drain_completed` (same drain)."""
        return self.drain_completed()[0]

    @property
    def pending_completed(self) -> int:
        """Journaled completions not yet drained (0 with ``journal=False``)."""
        return len(self._pending_means)

    def requeue_completed(self, means, times) -> None:
        """Put drained journal entries back at the head of the pending journal.

        The streaming operator's backfill lane drains the whole journal to
        replay interior refresh chunks itself, then requeues the closing
        chunk so the final (real) refresh drains exactly the entries its
        streamed counterpart would have.  Entries requeue in front of any
        completions journaled since the drain, preserving replay order.
        """
        if not self.journal:
            raise ValueError("PaneBuffer was constructed with journal=False")
        means = np.asarray(means, dtype=np.float64)
        times = np.asarray(times, dtype=np.float64)
        if means.size != times.size:
            raise ValueError(
                f"means and times must have equal lengths, got {means.size} and {times.size}"
            )
        self._pending_means[:0] = means.tolist()
        self._pending_times[:0] = times.tolist()

    # -- reset ---------------------------------------------------------------

    def reset(self) -> DiscardedState:
        """Drop all state and report exactly what was discarded.

        The report includes the trailing partial pane (points pushed since the
        last pane boundary, and their start timestamp), which the aggregated
        views never exposed — resetting mid-pane is a lossy operation and this
        makes the loss explicit rather than silent.
        """
        discarded = DiscardedState(
            completed_panes=len(self._means),
            evicted_panes=self._evicted_panes,
            total_points=self._total_points,
            open_pane_points=self.open_pane_points,
            open_pane_start=self.open_pane_start,
        )
        self._panes.clear()
        self._means.clear()
        self._times.clear()
        if self._synth is not None:
            self._synth.clear()
        self._open_synth = 0
        self._open = None
        self._total_points = 0
        self._evicted_panes = 0
        self._pending_means = []
        self._pending_times = []
        return discarded

    def clear(self) -> None:
        """Drop all state (e.g. when the visualized range changes).

        Equivalent to :meth:`reset` with the discard report ignored — any
        trailing partial pane is dropped; use :meth:`reset` when the caller
        needs to account for it.
        """
        self.reset()

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> dict:
        """Full buffer state as plain scalars/arrays (see :mod:`repro.persist`).

        Captures everything ingestion semantics depend on — retained means
        and timestamps, per-pane sketches when kept, the *open* partial pane,
        the pending journal, and the eviction counters — so a buffer restored
        by :meth:`from_state` folds subsequent points exactly as the original
        would have (completions, evictions, and journal entries included).
        """
        state = {
            "pane_size": self.pane_size,
            "capacity": self.capacity,
            "journal": self.journal,
            "keep_sketches": self.keep_sketches,
            "track_quality": self.track_quality,
            "synth": (
                np.empty(0, dtype=np.float64)
                if self._synth is None
                else self._synth.view().copy()
            ),
            "open_synth": self._open_synth,
            "means": self._means.view().copy(),
            "times": self._times.view().copy(),
            "total_points": self._total_points,
            "evicted_panes": self._evicted_panes,
            "pending_means": np.asarray(self._pending_means, dtype=np.float64),
            "pending_times": np.asarray(self._pending_times, dtype=np.float64),
            "open": None if self._open is None else _pane_state(self._open),
        }
        if self.keep_sketches:
            panes = list(self._panes)
            state["panes"] = {
                "start_time": np.array([p.start_time for p in panes], dtype=np.float64),
                "count": np.array([p.sketch.count for p in panes], dtype=np.int64),
                "mean": np.array([p.sketch.mean for p in panes], dtype=np.float64),
                "m2": np.array([p.sketch.m2 for p in panes], dtype=np.float64),
                "m3": np.array([p.sketch.m3 for p in panes], dtype=np.float64),
                "m4": np.array([p.sketch.m4 for p in panes], dtype=np.float64),
            }
        return state

    @classmethod
    def from_state(cls, state: dict) -> "PaneBuffer":
        """Rebuild a buffer from :meth:`state_dict` output (exact resume)."""
        buffer = cls(
            pane_size=int(state["pane_size"]),
            capacity=int(state["capacity"]),
            journal=bool(state["journal"]),
            keep_sketches=bool(state["keep_sketches"]),
            track_quality=bool(state.get("track_quality", False)),
        )
        buffer._means.append_many(np.asarray(state["means"], dtype=np.float64))
        buffer._times.append_many(np.asarray(state["times"], dtype=np.float64))
        if buffer._synth is not None:
            buffer._synth.append_many(np.asarray(state["synth"], dtype=np.float64))
            buffer._open_synth = int(state["open_synth"])
        buffer._total_points = int(state["total_points"])
        buffer._evicted_panes = int(state["evicted_panes"])
        buffer._pending_means = list(np.asarray(state["pending_means"], dtype=np.float64))
        buffer._pending_times = list(np.asarray(state["pending_times"], dtype=np.float64))
        if state["open"] is not None:
            buffer._open = _pane_from_state(state["open"])
        if buffer.keep_sketches:
            panes = state["panes"]
            starts = np.asarray(panes["start_time"], dtype=np.float64)
            counts = np.asarray(panes["count"], dtype=np.int64)
            means = np.asarray(panes["mean"], dtype=np.float64)
            m2s = np.asarray(panes["m2"], dtype=np.float64)
            m3s = np.asarray(panes["m3"], dtype=np.float64)
            m4s = np.asarray(panes["m4"], dtype=np.float64)
            buffer._panes.extend(
                Pane(
                    start_time=float(starts[i]),
                    sketch=MomentSketch(
                        count=int(counts[i]),
                        mean=float(means[i]),
                        m2=float(m2s[i]),
                        m3=float(m3s[i]),
                        m4=float(m4s[i]),
                    ),
                )
                for i in range(starts.size)
            )
        return buffer


def _pane_state(pane: Pane) -> dict:
    return {
        "start_time": pane.start_time,
        "count": pane.sketch.count,
        "mean": pane.sketch.mean,
        "m2": pane.sketch.m2,
        "m3": pane.sketch.m3,
        "m4": pane.sketch.m4,
    }


def _pane_from_state(state: dict) -> Pane:
    return Pane(
        start_time=float(state["start_time"]),
        sketch=MomentSketch(
            count=int(state["count"]),
            mean=float(state["mean"]),
            m2=float(state["m2"]),
            m3=float(state["m3"]),
            m4=float(state["m4"]),
        ),
    )
