"""Stream sources: replaying stored series as live-arriving points.

The performance experiments (Figures 10, 11) drive streaming ASAP with
recorded traces replayed point by point.  :class:`ReplaySource` does exactly
that; :class:`ChunkedReplaySource` replays in arrival batches, which is how a
collection agent shipping one scrape interval at a time behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..timeseries.series import TimeSeries

__all__ = ["StreamPoint", "ReplaySource", "ChunkedReplaySource"]


@dataclass(frozen=True)
class StreamPoint:
    """One arrival: a timestamped value."""

    timestamp: float
    value: float


class ReplaySource:
    """Replay a :class:`TimeSeries` one point at a time."""

    def __init__(self, series: TimeSeries) -> None:
        self._series = series

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[StreamPoint]:
        for timestamp, value in self._series:
            yield StreamPoint(timestamp, value)


class ChunkedReplaySource:
    """Replay a series in fixed-size batches (one scrape interval per batch)."""

    def __init__(self, series: TimeSeries, chunk_size: int) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._series = series
        self.chunk_size = chunk_size

    def __iter__(self) -> Iterator[list[StreamPoint]]:
        chunk: list[StreamPoint] = []
        for timestamp, value in self._series:
            chunk.append(StreamPoint(timestamp, value))
            if len(chunk) == self.chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk
