"""Incremental aggregates for streaming windows.

Streaming ASAP folds arriving points into pane subaggregates and must be able
to compute the statistics its search needs — mean, variance, kurtosis —
without replaying raw points (Section 4.5).  The workhorse here is
:class:`MomentSketch`, an online tracker of the first four central moments
that supports both single-value updates (Welford-style) and *merging* two
sketches (Pébay's pairwise update formulas).  Merging is what makes
pane-based subaggregation work: each pane keeps a sketch, and a window's
statistics are the merge of its panes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MomentSketch", "MinMaxAggregate", "SumAggregate"]


@dataclass
class SumAggregate:
    """Count and sum — enough to reconstruct pane means."""

    count: int = 0
    total: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        self.total += value

    def merge(self, other: "SumAggregate") -> None:
        self.count += other.count
        self.total += other.total

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty aggregate is undefined")
        return self.total / self.count


@dataclass
class MinMaxAggregate:
    """Running minimum and maximum."""

    count: int = 0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def update(self, value: float) -> None:
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "MinMaxAggregate") -> None:
        self.count += other.count
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)


@dataclass
class MomentSketch:
    """Online first-four central moments with exact merge.

    Tracks ``count``, ``mean`` and the central moment sums ``m2``, ``m3``,
    ``m4`` (i.e. ``sum((x - mean)^k)``).  ``update`` is the classic
    single-pass recurrence; ``merge`` is Pébay's pairwise combination, so a
    window statistic can be assembled from disjoint pane sketches in O(#panes)
    regardless of how many raw points each pane absorbed.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    m3: float = 0.0
    m4: float = 0.0

    @classmethod
    def of(cls, values) -> "MomentSketch":
        """Sketch of a batch of values (vectorized, numerically direct)."""
        arr = np.asarray(values, dtype=np.float64)
        sketch = cls()
        if arr.size == 0:
            return sketch
        mu = float(arr.mean())
        centered = arr - mu
        sketch.count = int(arr.size)
        sketch.mean = mu
        sketch.m2 = float(np.sum(centered ** 2))
        sketch.m3 = float(np.sum(centered ** 3))
        sketch.m4 = float(np.sum(centered ** 4))
        return sketch

    def update(self, value: float) -> None:
        """Fold in one value (Welford/Terriberry single-point update)."""
        n1 = self.count
        self.count = n1 + 1
        delta = value - self.mean
        delta_n = delta / self.count
        delta_n2 = delta_n * delta_n
        term1 = delta * delta_n * n1
        self.mean += delta_n
        self.m4 += (
            term1 * delta_n2 * (self.count * self.count - 3 * self.count + 3)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3
        )
        self.m3 += term1 * delta_n * (self.count - 2) - 3.0 * delta_n * self.m2
        self.m2 += term1

    def merge(self, other: "MomentSketch") -> None:
        """Combine another sketch into this one (Pébay pairwise formulas)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2, self.m3, self.m4 = other.m2, other.m3, other.m4
            return
        na, nb = float(self.count), float(other.count)
        n = na + nb
        delta = other.mean - self.mean
        delta2 = delta * delta
        m2 = self.m2 + other.m2 + delta2 * na * nb / n
        m3 = (
            self.m3
            + other.m3
            + delta ** 3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n
        )
        m4 = (
            self.m4
            + other.m4
            + delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n ** 3)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n
        )
        self.mean = (na * self.mean + nb * other.mean) / n
        self.count = int(n)
        self.m2, self.m3, self.m4 = m2, m3, m4

    # -- derived statistics --------------------------------------------------

    @property
    def variance(self) -> float:
        """Population variance."""
        if self.count == 0:
            raise ValueError("variance of an empty sketch is undefined")
        return self.m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def kurtosis(self) -> float:
        """Non-excess kurtosis; 0.0 for degenerate (zero variance) sketches."""
        if self.count == 0:
            raise ValueError("kurtosis of an empty sketch is undefined")
        if self.m2 == 0.0:
            return 0.0
        return self.count * self.m4 / (self.m2 * self.m2)

    def copy(self) -> "MomentSketch":
        """An independent copy of this sketch."""
        return MomentSketch(self.count, self.mean, self.m2, self.m3, self.m4)
