"""Stream operator plumbing.

ASAP "acts as a transformation over fixed-size sliding windows over a single
time series" (Section 2) and is deployed inside a stream-processing engine
(MacroBase).  This module provides the minimal operator contract that the
streaming ASAP implementation — and anything a user wants to compose around
it — plugs into: push one point, optionally emit one output, chain operators
into pipelines.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, Sequence, TypeVar

__all__ = ["StreamOperator", "MapOperator", "FilterOperator", "Pipeline", "run_stream"]

TIn = TypeVar("TIn")
TOut = TypeVar("TOut")


class StreamOperator(Generic[TIn, TOut]):
    """Base contract: ``push`` one item, get zero-or-more outputs.

    Subclasses override :meth:`push`; :meth:`flush` may emit trailing output
    when the stream ends (e.g. a final partial window).
    """

    def push(self, item: TIn) -> Iterable[TOut]:
        """Consume one item; return any outputs it triggered."""
        raise NotImplementedError

    def flush(self) -> Iterable[TOut]:
        """Emit any buffered trailing output at end-of-stream."""
        return ()


class MapOperator(StreamOperator[TIn, TOut]):
    """Apply a pure function to each item."""

    def __init__(self, fn: Callable[[TIn], TOut]) -> None:
        self._fn = fn

    def push(self, item: TIn) -> Iterable[TOut]:
        return (self._fn(item),)


class FilterOperator(StreamOperator[TIn, TIn]):
    """Drop items failing a predicate."""

    def __init__(self, predicate: Callable[[TIn], bool]) -> None:
        self._predicate = predicate

    def push(self, item: TIn) -> Iterable[TIn]:
        if self._predicate(item):
            return (item,)
        return ()


class Pipeline(StreamOperator[TIn, TOut]):
    """Sequential composition of operators.

    Each stage's outputs fan into the next stage; flush cascades through the
    stages in order so buffered state drains correctly.
    """

    def __init__(self, stages: Sequence[StreamOperator]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self._stages = list(stages)

    def push(self, item: TIn) -> Iterable[TOut]:
        current: list = [item]
        for stage in self._stages:
            produced: list = []
            for element in current:
                produced.extend(stage.push(element))
            current = produced
        return current

    def flush(self) -> Iterable[TOut]:
        # Items drained from stage k must still traverse stages k+1..n, and
        # each stage flushes only after absorbing everything from upstream.
        carried: list = []
        for stage in self._stages:
            processed: list = []
            for element in carried:
                processed.extend(stage.push(element))
            processed.extend(stage.flush())
            carried = processed
        return carried


def run_stream(operator: StreamOperator[TIn, TOut], items: Iterable[TIn]) -> Iterator[TOut]:
    """Drive an operator over a finite stream, flushing at the end."""
    for item in items:
        yield from operator.push(item)
    yield from operator.flush()
