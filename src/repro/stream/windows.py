"""Sliding-window semantics.

A sliding-window aggregate is characterized by its *window* (points per
window) and *slide* (distance between window starts).  ASAP fixes the slide
from the target display (Section 3.3: slide = #original points / #desired
points) and searches only the window, but the substrate supports the general
case, including the pane-size rule from Li et al.: panes of size
``gcd(window, slide)`` let window aggregates be assembled from disjoint
subaggregates with no recomputation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["WindowSpec", "window_starts", "iter_windows", "slide_for_resolution"]


@dataclass(frozen=True)
class WindowSpec:
    """A (window, slide) pair in points."""

    window: int
    slide: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.slide < 1:
            raise ValueError(f"slide must be >= 1, got {self.slide}")

    @property
    def pane_size(self) -> int:
        """gcd(window, slide): the largest disjoint subaggregate size."""
        return math.gcd(self.window, self.slide)

    @property
    def panes_per_window(self) -> int:
        return self.window // self.pane_size

    def output_length(self, n: int) -> int:
        """Number of complete windows over a length-*n* series."""
        if n < self.window:
            return 0
        return (n - self.window) // self.slide + 1


def window_starts(n: int, spec: WindowSpec) -> np.ndarray:
    """Start indices of every complete window over a length-*n* series."""
    count = spec.output_length(n)
    return spec.slide * np.arange(count, dtype=np.int64)


def iter_windows(values, spec: WindowSpec) -> Iterator[np.ndarray]:
    """Yield each complete window as a view over the input array."""
    arr = np.asarray(values, dtype=np.float64)
    for start in window_starts(arr.size, spec):
        yield arr[start : start + spec.window]


def slide_for_resolution(n: int, resolution: int) -> int:
    """The paper's slide policy: ``#original points / #desired points``.

    Produces at most *resolution* output points; never less than 1.  This is
    the point-to-pixel ratio that also sizes preaggregation buckets and
    streaming panes (Sections 3.3, 4.4, 4.5).
    """
    if n < 0:
        raise ValueError(f"series length must be non-negative, got {n}")
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    return max(n // resolution, 1)
